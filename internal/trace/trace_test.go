package trace

import (
	"strings"
	"testing"
	"time"

	"gomp/internal/kmp"
	"gomp/omp"
)

func TestProfilerCapturesRegions(t *testing.T) {
	p := New()
	p.Start()
	defer p.Stop()

	for i := 0; i < 5; i++ {
		omp.Parallel(func(th *omp.Thread) {
			omp.Barrier(th)
			omp.For(th, 100, func(int64) {}, omp.Schedule(omp.Dynamic, 10))
		}, omp.NumThreads(4), omp.Loc("app.go", 42, "parallel"))
	}
	p.Stop()

	sums := p.Summaries()
	var region *RegionSummary
	for i := range sums {
		if strings.Contains(sums[i].Name, "app.go:42") {
			region = &sums[i]
		}
	}
	if region == nil {
		t.Fatalf("region app.go:42 not captured: %+v", sums)
	}
	if region.Calls != 5 {
		t.Errorf("calls = %d, want 5", region.Calls)
	}
	if region.MaxTeam != 4 {
		t.Errorf("maxTeam = %d, want 4", region.MaxTeam)
	}
	// 4 threads × 5 regions: one explicit barrier each, at least.
	if region.Barriers < 20 {
		t.Errorf("barriers = %d, want >= 20", region.Barriers)
	}
	if region.Total <= 0 || region.Mean <= 0 {
		t.Errorf("timings not accumulated: %+v", region)
	}
}

func TestProfilerCapturesLoops(t *testing.T) {
	p := New()
	p.Start()
	defer p.Stop()
	omp.Parallel(func(th *omp.Thread) {
		omp.For(th, 50, func(int64) {}, omp.Schedule(omp.Guided, 4), omp.Loc("k.go", 7, "for"))
	}, omp.NumThreads(3))
	p.Stop()
	found := false
	for _, s := range p.Summaries() {
		if strings.Contains(s.Name, "k.go:7") && s.Loops == 3 {
			found = true // each of the 3 threads initialised the loop once
		}
	}
	if !found {
		t.Fatalf("dynamic loop inits not attributed: %+v", p.Summaries())
	}
}

func TestZones(t *testing.T) {
	p := New()
	end := p.Zone("assembly")
	time.Sleep(2 * time.Millisecond)
	end()
	end2 := p.Zone("assembly")
	end2()
	var z *RegionSummary
	for i, s := range p.Summaries() {
		if s.Name == "assembly" {
			z = &p.Summaries()[i]
		}
	}
	if z == nil {
		t.Fatal("zone not recorded")
	}
	if z.Calls != 2 {
		t.Fatalf("zone calls = %d, want 2", z.Calls)
	}
	if z.Total < 2*time.Millisecond {
		t.Fatalf("zone total %v too small", z.Total)
	}
}

func TestReportFormat(t *testing.T) {
	p := New()
	p.Start()
	omp.Parallel(func(th *omp.Thread) {}, omp.NumThreads(2), omp.Loc("r.go", 1, "parallel"))
	p.Stop()
	rep := p.Report()
	for _, want := range []string{"%time", "region", "r.go:1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestStopDetachesHook(t *testing.T) {
	p := New()
	p.Start()
	p.Stop()
	before := len(p.Summaries())
	omp.Parallel(func(th *omp.Thread) {}, omp.NumThreads(2), omp.Loc("x.go", 9, "parallel"))
	if len(p.Summaries()) != before {
		t.Fatal("profiler still receiving events after Stop")
	}
}

// The hook must be cheap when no profiler is attached: this is a guard
// against accidentally making tracing mandatory.
func TestNoProfilerNoPanic(t *testing.T) {
	kmp.SetTracer(nil)
	omp.Parallel(func(th *omp.Thread) { omp.Barrier(th) }, omp.NumThreads(2))
}
