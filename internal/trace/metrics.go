package trace

import (
	"expvar"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The metrics registry: cheap aggregate counters, gauges and histograms
// fed by the event stream, independent of the per-region flat profile.
// A Metrics value is safe for concurrent update and read; snapshots are
// plain JSON-able structs so npbsuite can embed one per kernel in
// BENCH_<class>.json, and PublishExpvar exposes the live registry on
// the standard /debug/vars surface.

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level with a recorded high-water mark.
type Gauge struct{ v, peak atomic.Int64 }

// Add moves the gauge by d and updates the peak.
func (g *Gauge) Add(d int64) {
	n := g.v.Add(d)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// histBuckets is the fixed bucket count of a Histogram: power-of-two
// nanosecond buckets from 1ns up to ~4s, plus an overflow bucket.
const histBuckets = 33

// Histogram is a log2-bucketed distribution of nanosecond durations.
type Histogram struct {
	count, sum atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	b := 0
	for v := ns; v > 0 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// HistBucket is one non-empty histogram bucket: Count observations at
// most LeNs nanoseconds.
type HistBucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time histogram reading.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's non-empty buckets. Bucket b holds
// the values of bit length b — [2^(b-1), 2^b − 1] — so its inclusive
// upper bound is 2^b − 1 (bucket 0 holds only clamped non-positive
// observations, upper bound 0).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n > 0 {
			le := int64(1)<<b - 1
			if b == 0 {
				le = 0
			}
			s.Buckets = append(s.Buckets, HistBucket{LeNs: le, Count: n})
		}
	}
	return s
}

// Metrics is the runtime metrics registry one profiler maintains.
type Metrics struct {
	Forks         Counter // parallel regions joined
	RegionNs      Counter // summed region wall time
	Barriers      Counter // explicit barrier arrivals
	BarrierWaitNs Counter // summed barrier wait (incl. task drain)
	LoopInits     Counter // dynamic-loop initialisations (per thread)
	LoopNs        Counter // summed per-thread loop participation
	LoopSteals    Counter // iteration-range steals
	StolenIters   Counter // iterations transferred by steals
	TaskSpawns    Counter // deferred explicit tasks created
	TaskRuns      Counter // deferred explicit tasks completed
	TaskNs        Counter // summed task body time
	TaskSteals    Counter // tasks stolen from a teammate's deque
	Taskgroups    Counter
	Taskloops     Counter
	DepStalls     Counter // tasks withheld on unresolved dependences
	DepReleases   Counter // successors made ready by completions
	Cancels       Counter // cancel-directive encounters
	RingDrops     Counter // events lost to full rings (bounded history)

	// Build-driver throughput (internal/driver, `gompcc -module`): the
	// preprocessor is itself an omp workload, so its cold/warm split
	// and transform time report through the same registry as any other
	// runtime subsystem.
	DriverColdFiles   Counter // files transformed (cache miss)
	DriverWarmFiles   Counter // files skipped via manifest hash match
	DriverTransformNs Counter // summed per-file transform time

	// TaskQueue tracks spawned-but-not-yet-run deferred tasks: an
	// approximate ready/withheld backlog with its peak.
	TaskQueue Gauge

	// BarrierWait and TaskRun are latency distributions of the two
	// span kinds that diagnose imbalance: time threads burn waiting at
	// barriers, and task body granularity.
	BarrierWait Histogram
	TaskRun     Histogram
}

// MetricsSnapshot is a point-in-time JSON-able reading of a Metrics
// registry — the per-kernel metrics block BENCH_<class>.json embeds.
type MetricsSnapshot struct {
	Forks         int64        `json:"forks"`
	RegionNs      int64        `json:"region_ns"`
	Barriers      int64        `json:"barriers"`
	BarrierWaitNs int64        `json:"barrier_wait_ns"`
	LoopInits     int64        `json:"loop_inits"`
	LoopNs        int64        `json:"loop_ns"`
	LoopSteals    int64        `json:"loop_steals"`
	StolenIters   int64        `json:"stolen_iters"`
	TaskSpawns    int64        `json:"task_spawns"`
	TaskRuns      int64        `json:"task_runs"`
	TaskNs        int64        `json:"task_ns"`
	TaskSteals    int64        `json:"task_steals"`
	Taskgroups    int64        `json:"taskgroups"`
	Taskloops     int64        `json:"taskloops"`
	DepStalls     int64        `json:"dep_stalls"`
	DepReleases   int64        `json:"dep_releases"`
	Cancels       int64        `json:"cancels"`
	RingDrops     int64        `json:"ring_drops"`
	DriverCold    int64        `json:"driver_cold_files"`
	DriverWarm    int64        `json:"driver_warm_files"`
	DriverNs      int64        `json:"driver_transform_ns"`
	TaskQueuePeak int64        `json:"task_queue_peak"`
	BarrierWait   HistSnapshot `json:"barrier_wait_hist"`
	TaskRunHist   HistSnapshot `json:"task_run_hist"`
}

// Snapshot captures every counter, gauge peak and histogram.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Forks:         m.Forks.Value(),
		RegionNs:      m.RegionNs.Value(),
		Barriers:      m.Barriers.Value(),
		BarrierWaitNs: m.BarrierWaitNs.Value(),
		LoopInits:     m.LoopInits.Value(),
		LoopNs:        m.LoopNs.Value(),
		LoopSteals:    m.LoopSteals.Value(),
		StolenIters:   m.StolenIters.Value(),
		TaskSpawns:    m.TaskSpawns.Value(),
		TaskRuns:      m.TaskRuns.Value(),
		TaskNs:        m.TaskNs.Value(),
		TaskSteals:    m.TaskSteals.Value(),
		Taskgroups:    m.Taskgroups.Value(),
		Taskloops:     m.Taskloops.Value(),
		DepStalls:     m.DepStalls.Value(),
		DepReleases:   m.DepReleases.Value(),
		Cancels:       m.Cancels.Value(),
		RingDrops:     m.RingDrops.Value(),
		DriverCold:    m.DriverColdFiles.Value(),
		DriverWarm:    m.DriverWarmFiles.Value(),
		DriverNs:      m.DriverTransformNs.Value(),
		TaskQueuePeak: m.TaskQueue.Peak(),
		BarrierWait:   m.BarrierWait.Snapshot(),
		TaskRunHist:   m.TaskRun.Snapshot(),
	}
}

// Text renders the registry as an aligned human-readable block.
func (m *Metrics) Text() string {
	s := m.Snapshot()
	var b strings.Builder
	row := func(name string, v int64) { fmt.Fprintf(&b, "  %-18s %12d\n", name, v) }
	dur := func(name string, ns int64) {
		fmt.Fprintf(&b, "  %-18s %12s\n", name, time.Duration(ns).Round(time.Microsecond))
	}
	b.WriteString("runtime metrics:\n")
	row("forks", s.Forks)
	dur("region-time", s.RegionNs)
	row("barriers", s.Barriers)
	dur("barrier-wait", s.BarrierWaitNs)
	row("loop-inits", s.LoopInits)
	dur("loop-time", s.LoopNs)
	row("loop-steals", s.LoopSteals)
	row("stolen-iters", s.StolenIters)
	row("task-spawns", s.TaskSpawns)
	row("task-runs", s.TaskRuns)
	dur("task-time", s.TaskNs)
	row("task-steals", s.TaskSteals)
	row("task-queue-peak", s.TaskQueuePeak)
	row("taskgroups", s.Taskgroups)
	row("taskloops", s.Taskloops)
	row("dep-stalls", s.DepStalls)
	row("dep-releases", s.DepReleases)
	row("cancels", s.Cancels)
	row("ring-drops", s.RingDrops)
	if s.DriverCold > 0 || s.DriverWarm > 0 {
		row("driver-cold-files", s.DriverCold)
		row("driver-warm-files", s.DriverWarm)
		dur("driver-transform", s.DriverNs)
	}
	if s.BarrierWait.Count > 0 {
		mean := time.Duration(s.BarrierWait.SumNs / s.BarrierWait.Count)
		fmt.Fprintf(&b, "  %-18s %12s\n", "barrier-wait-mean", mean.Round(time.Microsecond))
	}
	if s.TaskRunHist.Count > 0 {
		mean := time.Duration(s.TaskRunHist.SumNs / s.TaskRunHist.Count)
		fmt.Fprintf(&b, "  %-18s %12s\n", "task-run-mean", mean.Round(time.Microsecond))
	}
	return b.String()
}

// expvar publication: one process-wide "gomp" variable that reads the
// most recently published registry, so re-publishing (a new profiler)
// never trips expvar's duplicate-name panic.
var (
	expvarTarget atomic.Pointer[Metrics]
	expvarOnce   sync.Once
)

// PublishExpvar exposes this registry as the expvar variable "gomp"
// (the standard /debug/vars endpoint).
//
// Re-targeting semantics: expvar forbids publishing the same name
// twice, so the "gomp" variable is registered exactly once and reads
// through an atomic pointer to the most recently published registry —
// calling PublishExpvar on a second Metrics (a new profiler after the
// first was stopped) atomically re-targets the existing variable rather
// than panicking. The variable therefore always reflects the registry
// of the newest publisher, even after that profiler is disabled (its
// final counts remain readable). When no registry has been published —
// or profiling is disabled and the last registry is gone — the variable
// yields a zero MetricsSnapshot, never nil, so /debug/vars consumers
// always see a well-formed object.
func (m *Metrics) PublishExpvar() {
	expvarTarget.Store(m)
	expvarOnce.Do(func() {
		expvar.Publish("gomp", expvar.Func(func() any {
			if t := expvarTarget.Load(); t != nil {
				return t.Snapshot()
			}
			// Nil-safe: profiling disabled or nothing published yet.
			return MetricsSnapshot{}
		}))
	})
}
