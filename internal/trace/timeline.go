package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gomp/internal/kmp"
)

// Chrome trace-event JSON export: the retained raw timeline rendered in
// the trace-event format both chrome://tracing and Perfetto load. Each
// runtime thread (global id) is one track; parallel regions, loop
// participations and task bodies are complete ("X") slices; work steals
// are flow arrows ("s"/"f") from the victim's track to the thief's;
// spawns, dependence stalls/releases and cancels are instants.

// chromeEvent is one trace-event record. Ts and Dur are microseconds
// (the format's unit); the runtime clock is nanoseconds, so fractional
// microseconds keep full precision.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const timelinePid = 1

func us(ns int64) float64 { return float64(ns) / 1e3 }

// named gives instants and slices a non-empty display name even for
// unlocated constructs.
func named(loc kmp.Ident, fallback string) string {
	if s := loc.String(); s != "" {
		return s
	}
	return fallback
}

// WriteTimeline drains pending events and writes the retained timeline
// as Chrome trace-event JSON. The profiler must have been constructed
// with WithTimeline; otherwise only explicit zones (if any) appear.
func (p *Profiler) WriteTimeline(w io.Writer) error {
	p.Flush()
	p.mu.Lock()
	events := append([]kmp.TraceEvent(nil), p.events...)
	zones := append([]zoneSpan(nil), p.zoneSpans...)
	truncated := p.timelineDrop
	p.mu.Unlock()

	out := make([]chromeEvent, 0, 2*len(events)+len(zones)+8)
	gtids := map[int]bool{}
	flowID := 0
	for _, ev := range events {
		gtids[ev.Gtid] = true
		switch ev.Kind {
		case kmp.TraceForkEnd:
			out = append(out, chromeEvent{
				Name: named(ev.Loc, "parallel"), Cat: "region", Ph: "X",
				Ts: us(ev.When), Dur: us(ev.Dur), Pid: timelinePid, Tid: ev.Gtid,
				Args: map[string]any{"threads": ev.NThreads},
			})
		case kmp.TraceLoopFini:
			out = append(out, chromeEvent{
				Name: named(ev.Loc, "for"), Cat: "loop", Ph: "X",
				Ts: us(ev.When), Dur: us(ev.Dur), Pid: timelinePid, Tid: ev.Gtid,
			})
		case kmp.TraceTaskRun:
			out = append(out, chromeEvent{
				Name: "task " + named(ev.Loc, "(unlocated)"), Cat: "task", Ph: "X",
				Ts: us(ev.When), Dur: us(ev.Dur), Pid: timelinePid, Tid: ev.Gtid,
			})
		case kmp.TraceBarrier:
			out = append(out, chromeEvent{
				Name: "barrier", Cat: "sync", Ph: "X",
				Ts: us(ev.When), Dur: us(ev.Dur), Pid: timelinePid, Tid: ev.Gtid,
			})
		case kmp.TraceLoopSteal, kmp.TraceTaskSteal:
			// A flow arrow from the victim's track to the thief's. The
			// start step is nudged one ns earlier so the arrow renders
			// even when both binding points share a timestamp.
			victim := int(ev.Arg0)
			gtids[victim] = true
			flowID++
			cat, name := "steal", "loop-steal"
			args := map[string]any{"victim": victim}
			if ev.Kind == kmp.TraceTaskSteal {
				name = "task-steal"
			} else {
				args["iters"] = ev.Arg1
			}
			out = append(out,
				chromeEvent{Name: name, Cat: cat, Ph: "s", ID: flowID,
					Ts: us(ev.When - 1), Pid: timelinePid, Tid: victim},
				chromeEvent{Name: name, Cat: cat, Ph: "f", BP: "e", ID: flowID,
					Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid},
				chromeEvent{Name: name, Cat: cat, Ph: "i", S: "t",
					Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid, Args: args},
			)
		case kmp.TraceTaskSpawn:
			out = append(out, chromeEvent{
				Name: "spawn " + named(ev.Loc, "task"), Cat: "task", Ph: "i", S: "t",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
				Args: map[string]any{"deps": ev.Arg0, "priority": ev.Arg1},
			})
		case kmp.TraceTaskDepStall:
			out = append(out, chromeEvent{
				Name: "dep-stall", Cat: "dep", Ph: "i", S: "t",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
				Args: map[string]any{"waiting_on": ev.Arg0},
			})
		case kmp.TraceTaskDepRelease:
			out = append(out, chromeEvent{
				Name: "dep-release", Cat: "dep", Ph: "i", S: "t",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
				Args: map[string]any{"released": ev.Arg0, "successors": ev.Arg1},
			})
		case kmp.TraceCancel:
			out = append(out, chromeEvent{
				Name: "cancel " + kmp.CancelKind(ev.Arg0).String(), Cat: "sync", Ph: "i", S: "p",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
			})
		case kmp.TraceTaskgroup:
			out = append(out, chromeEvent{
				Name: "taskgroup", Cat: "task", Ph: "i", S: "t",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
			})
		case kmp.TraceTaskloop:
			out = append(out, chromeEvent{
				Name: "taskloop", Cat: "task", Ph: "i", S: "t",
				Ts: us(ev.When), Pid: timelinePid, Tid: ev.Gtid,
				Args: map[string]any{"trip": ev.Arg0},
			})
		}
	}
	for _, z := range zones {
		gtids[z.gtid] = true
		out = append(out, chromeEvent{
			Name: z.name, Cat: "zone", Ph: "X",
			Ts: us(z.start), Dur: us(z.dur), Pid: timelinePid, Tid: z.gtid,
		})
	}
	if truncated > 0 {
		out = append(out, chromeEvent{
			Name: "timeline-truncated", Cat: "meta", Ph: "i", S: "g",
			Pid: timelinePid, Tid: 0,
			Args: map[string]any{"dropped_events": truncated},
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	// Track metadata leads: a named process and one named, ordered track
	// per runtime thread (gtid 0 is the initial/root thread).
	ids := make([]int, 0, len(gtids))
	for g := range gtids {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	meta := make([]chromeEvent, 0, len(ids)+1)
	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", Pid: timelinePid,
		Args: map[string]any{"name": "gomp"},
	})
	for i, g := range ids {
		name := fmt.Sprintf("omp thread g%d", g)
		if g == 0 {
			name = "initial thread"
		}
		meta = append(meta,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: timelinePid, Tid: g,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: timelinePid, Tid: g,
				Args: map[string]any{"sort_index": i}},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     append(meta, out...),
		"displayTimeUnit": "ms",
	})
}
