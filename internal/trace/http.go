package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gomp/internal/kmp"
)

// The /debug/gomp HTTP surface: live production observability without
// stopping the workload. Seven endpoints hang off the handler returned
// by Handler (conventionally mounted at /debug/gomp by omp.ServeDebug):
//
//	/status   instantaneous runtime state — every live team and the
//	          packed per-worker state word (running/in-barrier/
//	          stealing/spinning/parked) with its current region
//	/health   runtime self-diagnosis — watchdog state, stuck workers,
//	          dependence cycles detected right now (JSON)
//	/flight   the flight recorder's merged most-recent event history,
//	          JSON or ?format=text — works with no profiler installed
//	/metrics  the registry in OpenMetrics/Prometheus text format
//	/profile  capture ?seconds=N (default 1) of events, return the
//	          text Report with flat profile and imbalance analysis
//	/timeline capture ?seconds=N and return a Chrome trace-event JSON
//	          loadable in chrome://tracing or Perfetto
//	/regions  per-region imbalance/blame rows as JSON (?format=text
//	          for the aligned table); uses the default profiler's
//	          accumulated data, or a fresh ?seconds=N window
//
// Sampling /status reads only the atomic mirrors the runtime maintains
// on its normal paths, so scraping never stops the world and never
// perturbs the zero-allocation fork fast path.

// Resume reinstalls the profiler's collector as the runtime's active
// tool without resetting its aggregates — the inverse of Stop, used to
// hand the event stream back after a windowed capture superseded it.
func (p *Profiler) Resume() { kmp.SetCollector(p.col) }

// captureMu serialises windowed captures: the collector pointer is
// process-global, so two overlapping /profile requests would otherwise
// steal each other's event streams mid-window.
var captureMu sync.Mutex

// captureWindow records a fresh profiler for window d (or until ctx is
// done), then restores whichever profiler was active before. The
// returned profiler is stopped and ready for Report/WriteTimeline.
func captureWindow(ctx context.Context, d time.Duration, opts ...Option) *Profiler {
	captureMu.Lock()
	defer captureMu.Unlock()
	prev := Default()
	p := New(opts...)
	p.Start()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
	p.Stop()
	if prev != nil {
		prev.Resume()
	}
	return p
}

// seconds parses the request's ?seconds=N (float, default def), clamped
// to [10ms, 60s] so a typo cannot wedge the capture lock for an hour.
func seconds(r *http.Request, def float64) time.Duration {
	s := def
	if q := r.URL.Query().Get("seconds"); q != "" {
		if v, err := strconv.ParseFloat(q, 64); err == nil {
			s = v
		}
	}
	if s > 60 {
		s = 60
	}
	d := time.Duration(s * float64(time.Second))
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the /debug/gomp endpoint suite rooted at "/". Mount
// it under a prefix with http.StripPrefix, or use omp.ServeDebug /
// GOMP_DEBUG_ADDR which do the mounting and serving.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", serveIndex)
	mux.HandleFunc("/status", serveStatus)
	mux.HandleFunc("/health", serveHealth)
	mux.HandleFunc("/flight", serveFlight)
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/profile", serveProfile)
	mux.HandleFunc("/timeline", serveTimeline)
	mux.HandleFunc("/regions", serveRegions)
	return mux
}

func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `gomp runtime debug surface

  status              live teams and per-worker states (JSON)
  health              watchdog/stuck-worker/dep-cycle self-diagnosis (JSON)
  flight[?format=text]
                      flight-recorder event history (always on)
  metrics             registry in OpenMetrics text format
  profile?seconds=N   capture a window, return the text report
  timeline?seconds=N  capture a window, return Chrome trace JSON
  regions[?format=text][&seconds=N]
                      per-region imbalance and blame analysis
`)
}

// serveStatus snapshots the runtime's live team/worker state from the
// sampler-visible atomics — no locks shared with the fork path, no
// stop-the-world.
func serveStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, kmp.ReadStatus())
}

// serveHealth reports the runtime's self-diagnosis: watchdog state,
// workers stuck past the threshold, and dependence cycles detected at
// request time. A scrape of a hung process is exactly when this must
// work, so it reads only sampler-visible atomics and the withheld-task
// registries.
func serveHealth(w http.ResponseWriter, r *http.Request) {
	h := ReadHealth()
	// Unhealthy still answers 200 — the scrape succeeded and the payload
	// carries the verdict. Probes wanting a hard signal pass ?strict=1,
	// which turns unhealthy into 503 (the header must precede the body).
	if !h.Healthy && r.URL.Query().Get("strict") != "" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, h)
}

// serveFlight dumps the flight recorder: the always-on per-thread rings
// of most recent events, merged and time-ordered. No capture window, no
// profiler needed — the history already exists.
func serveFlight(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteFlightText(w)
		return
	}
	evs := FlightEvents()
	if evs == nil {
		evs = []FlightEvent{}
	}
	writeJSON(w, evs)
}

// serveMetrics renders the default profiler's registry; with profiling
// disabled it still serves a valid exposition reporting
// gomp_profiler_active 0.
func serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", OpenMetricsContentType)
	WriteOpenMetrics(w)
}

func serveProfile(w http.ResponseWriter, r *http.Request) {
	p := captureWindow(r.Context(), seconds(r, 1))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, p.Report())
}

func serveTimeline(w http.ResponseWriter, r *http.Request) {
	p := captureWindow(r.Context(), seconds(r, 1), WithTimeline(1<<20))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="gomp-timeline.json"`)
	p.WriteTimeline(w)
}

// serveRegions reports imbalance/blame rows. Without ?seconds it reads
// the default profiler's whole accumulated history (free — no capture);
// with ?seconds=N, or when no profiler is active, it captures a fresh
// window so the answer reflects what the workload is doing now.
func serveRegions(w http.ResponseWriter, r *http.Request) {
	p := Default()
	if p == nil || r.URL.Query().Get("seconds") != "" {
		p = captureWindow(r.Context(), seconds(r, 1))
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, p.AnalysisReport())
		return
	}
	rows := p.Analyses()
	if rows == nil {
		rows = []RegionAnalysis{}
	}
	writeJSON(w, rows)
}
