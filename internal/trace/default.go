package trace

import "sync/atomic"

// The package default profiler: the instance compiler-instrumented
// programs talk to. Generated code cannot import an internal package
// directly — the public omp package forwards omp.Profile/omp.ZoneAt
// here — and a process-wide default keeps the injected calls to a
// single expression with no plumbing through user code.

var defaultProf atomic.Pointer[Profiler]

func nopClose() {}

// Enable constructs a profiler, starts it, and installs it as the
// package default. It returns the profiler for report/export calls.
func Enable(opts ...Option) *Profiler {
	p := New(opts...)
	p.Start()
	defaultProf.Store(p)
	return p
}

// Default returns the current default profiler, or nil when disabled.
func Default() *Profiler { return defaultProf.Load() }

// Disable stops and uninstalls the default profiler, returning it (with
// its final aggregates) or nil if none was active.
func Disable() *Profiler {
	p := defaultProf.Swap(nil)
	if p != nil {
		p.Stop()
	}
	return p
}

// ZoneAt opens a source-located span on the default profiler; the
// returned function closes it. When no default profiler is active both
// open and close are no-ops, so instrumented binaries pay two pointer
// loads per zone when profiling is off.
func ZoneAt(file string, line int, name string) func() {
	p := defaultProf.Load()
	if p == nil {
		return nopClose
	}
	return p.ZoneAt(file, line, name)
}
