package trace

import (
	"fmt"
	"io"
	"time"

	"gomp/internal/kmp"
)

// Always-on diagnostics: the trace-layer view of the runtime's flight
// recorder and hang watchdog (internal/kmp). Unlike the Profiler —
// which exists only while someone collects — these read state the
// runtime maintains unconditionally, so they answer "what was the
// runtime doing just now" after the fact: on a watchdog trip, a
// SIGQUIT, or a /debug/gomp/flight scrape of a wedged process.

// Health is the runtime's self-diagnosis plus the trace layer's own
// state: what /debug/gomp/health serves.
type Health struct {
	kmp.HealthStatus
	// ProfilerActive reports whether a default profiler is collecting.
	ProfilerActive bool `json:"profiler_active"`
}

// ReadHealth snapshots runtime health: watchdog state, currently stuck
// workers, dependence cycles detected right now, and recorder status.
func ReadHealth() Health {
	return Health{HealthStatus: kmp.ReadHealth(), ProfilerActive: Default() != nil}
}

// FlightEvent is one flight-recorder record in exportable form.
type FlightEvent struct {
	Kind     string `json:"kind"`
	Region   string `json:"region,omitempty"`
	Gtid     int    `json:"gtid"`
	Tid      int    `json:"tid"`
	NThreads int    `json:"nthreads,omitempty"`
	WhenNs   int64  `json:"when_ns"`
	DurNs    int64  `json:"dur_ns,omitempty"`
	Arg0     int64  `json:"arg0,omitempty"`
	Arg1     int64  `json:"arg1,omitempty"`
}

// FlightEvents snapshots the flight recorder: the merged most-recent
// event history of every live team thread, oldest first. Available with
// no profiler installed — that is the point.
func FlightEvents() []FlightEvent {
	evs := kmp.ReadFlight()
	out := make([]FlightEvent, 0, len(evs))
	for _, ev := range evs {
		out = append(out, FlightEvent{
			Kind:     ev.Kind.String(),
			Region:   ev.Loc.String(),
			Gtid:     ev.Gtid,
			Tid:      ev.Tid,
			NThreads: ev.NThreads,
			WhenNs:   ev.When,
			DurNs:    ev.Dur,
			Arg0:     ev.Arg0,
			Arg1:     ev.Arg1,
		})
	}
	return out
}

// WriteFlightText renders the flight snapshot as an aligned table, one
// row per record, oldest first — the human form of /debug/gomp/flight.
func WriteFlightText(w io.Writer) error {
	evs := FlightEvents()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no events recorded (recorder off or no regions run)")
		return err
	}
	base := evs[0].WhenNs
	if _, err := fmt.Fprintf(w, "flight recorder: %d events (t0 = oldest record)\n", len(evs)); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %12s  %-14s  %4s  %4s  %10s  %s\n", "t+", "kind", "gtid", "tid", "dur", "region")
	for _, ev := range evs {
		dur := ""
		if ev.DurNs > 0 {
			dur = time.Duration(ev.DurNs).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %12s  %-14s  %4d  %4d  %10s  %s\n",
			time.Duration(ev.WhenNs-base).Round(time.Microsecond),
			ev.Kind, ev.Gtid, ev.Tid, dur, ev.Region)
	}
	return nil
}

// WriteDiagnostics writes the full diagnostic dump — health, dependence
// cycles, stuck workers, live team status and the flight-recorder tail —
// to w. This is what omp.DumpDiagnostics, the SIGQUIT handler and the
// watchdog's default trip action emit; every section reads only
// sampler-visible state, so dumping never perturbs or stops the
// workload (it works precisely when the workload is wedged).
func WriteDiagnostics(w io.Writer) error {
	h := ReadHealth()
	fmt.Fprintf(w, "=== gomp diagnostics ===\n")
	fmt.Fprintf(w, "healthy:          %v\n", h.Healthy)
	fmt.Fprintf(w, "watchdog:         running=%v threshold=%v trips=%d\n",
		h.WatchdogRunning, time.Duration(h.WatchdogThresholdNs), h.WatchdogTrips)
	fmt.Fprintf(w, "flight recorder:  %v\n", h.FlightRecorder)
	fmt.Fprintf(w, "profiler active:  %v\n", h.ProfilerActive)

	if len(h.Cycles) > 0 {
		fmt.Fprintf(w, "\n-- dependence cycles (deadlock) --\n")
		for _, c := range h.Cycles {
			fmt.Fprintf(w, "  %s\n", c)
			for _, t := range c.Tasks {
				fmt.Fprintf(w, "    task %s depend(%v)\n", t.Loc, t.Deps)
			}
		}
	}
	if len(h.Stuck) > 0 {
		fmt.Fprintf(w, "\n-- stuck workers --\n")
		for _, s := range h.Stuck {
			fmt.Fprintf(w, "  g%d (tid %d) %s for %v in %s\n",
				s.Gtid, s.Tid, s.State, time.Duration(s.ForNs).Round(time.Millisecond), s.Region)
		}
	}
	if r := kmp.LastHangReport(); r != nil {
		fmt.Fprintf(w, "\n-- last watchdog trip --\n%s", r)
	}

	st := kmp.ReadStatus()
	fmt.Fprintf(w, "\n-- live teams (%d) --\n", len(st.Teams))
	for _, tm := range st.Teams {
		fmt.Fprintf(w, "  team size=%d cap=%d regions=%d %s\n", tm.Size, tm.Capacity, tm.Regions, tm.Region)
		for _, wk := range tm.Workers {
			fmt.Fprintf(w, "    g%-4d tid=%-3d %-10s %s\n", wk.Gtid, wk.Tid, wk.State, wk.Region)
		}
	}

	fmt.Fprintf(w, "\n-- flight recorder --\n")
	return WriteFlightText(w)
}
