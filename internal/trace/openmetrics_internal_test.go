package trace

import (
	"encoding/json"
	"expvar"
	"strconv"
	"strings"
	"testing"
)

// Golden test of the exposition writer: metadata lines, counter _total
// suffixes, cumulative histogram buckets with the +Inf terminator,
// label escaping and the # EOF trailer, all from known inputs.
func TestWriteExpositionGolden(t *testing.T) {
	var m Metrics
	m.Forks.Add(3)
	m.RingDrops.Add(2)
	m.BarrierWait.Observe(1)
	m.BarrierWait.Observe(3)
	m.BarrierWait.Observe(3)
	m.TaskRun.Observe(1 << 40) // lands in the unbounded top bucket
	snap := m.Snapshot()

	sums := []RegionSummary{{Name: "q\"u\\o\nte", LoopTime: 5, TaskTime: 7}}
	analyses := []RegionAnalysis{{Name: "r", Imbalance: 0.75}}
	var b strings.Builder
	if err := writeExposition(&b, &snap, sums, analyses, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE gomp_forks counter\n",
		"# HELP gomp_forks ",
		"gomp_forks_total 3\n",
		"# TYPE gomp_trace_dropped_events counter\n",
		"gomp_trace_dropped_events_total 2\n",
		"gomp_profiler_active 1\n",
		"# TYPE gomp_barrier_wait_hist_ns histogram\n",
		"gomp_barrier_wait_hist_ns_bucket{le=\"1\"} 1\n",
		"gomp_barrier_wait_hist_ns_bucket{le=\"3\"} 3\n", // cumulative: 1 + 2
		"gomp_barrier_wait_hist_ns_bucket{le=\"+Inf\"} 3\n",
		"gomp_barrier_wait_hist_ns_sum 7\n",
		"gomp_barrier_wait_hist_ns_count 3\n",
		"gomp_task_run_hist_ns_bucket{le=\"+Inf\"} 1\n",
		`gomp_region_busy_ns_total{region="q\"u\\o\nte"} 12` + "\n",
		`gomp_region_imbalance{region="r"} 0.75` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
	// The unbounded top bucket must not claim a finite upper bound.
	if strings.Contains(out, "4294967295") {
		t.Errorf("overflow bucket leaked a false finite le bound:\n%s", out)
	}
	// Bucket series must be non-decreasing (OpenMetrics cumulativity).
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "gomp_barrier_wait_hist_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

// With no default profiler the package-level writer must still emit a
// valid exposition: gomp_profiler_active 0 and the # EOF trailer, so a
// scrape target never errors just because tracing is off.
func TestWriteOpenMetricsDisabled(t *testing.T) {
	if cur := defaultProf.Swap(nil); cur != nil {
		defer defaultProf.Store(cur)
	}
	var b strings.Builder
	if err := WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "gomp_profiler_active 0\n") {
		t.Errorf("disabled exposition missing active=0 gauge:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("disabled exposition missing # EOF:\n%s", out)
	}
	if strings.Contains(out, "gomp_forks_total") {
		t.Errorf("disabled exposition leaks registry families:\n%s", out)
	}
}

// The "gomp" expvar must yield a well-formed zero snapshot — never
// null — when no registry is currently published.
func TestExpvarNilTargetSafe(t *testing.T) {
	var m Metrics
	m.PublishExpvar() // ensure the variable exists
	old := expvarTarget.Swap(nil)
	defer expvarTarget.Store(old)

	got := expvar.Get("gomp").String()
	if got == "null" {
		t.Fatalf("expvar \"gomp\" yields null with no published registry")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(got), &snap); err != nil {
		t.Fatalf("expvar \"gomp\" not a snapshot with no registry: %v\n%s", err, got)
	}
}
