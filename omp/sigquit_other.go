//go:build !unix

package omp

// HandleSIGQUIT is a no-op on platforms without SIGQUIT; the returned
// stop function does nothing. Use DumpDiagnostics or ServeDebug's
// /debug/gomp/flight endpoint instead.
func HandleSIGQUIT() (stop func()) { return func() {} }
