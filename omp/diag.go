package omp

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gomp/internal/kmp"
	"gomp/internal/trace"
)

// Always-on diagnostics: the black-box flight recorder, the hang
// watchdog and pprof region labelling, surfaced for user programs.
// Everything here works with no profiler installed — the point is
// diagnosing a process that nobody thought to instrument in advance.
//
// Environment switches (read at init):
//
//	GOMP_FLIGHT=off|<records>  disable the flight recorder, or set the
//	                           per-thread ring capacity (default 256
//	                           records; always on unless "off")
//	GOMP_WATCHDOG=1|<dur>      arm the hang watchdog at startup; a
//	                           duration ("30s") sets the threshold,
//	                           "1"/"on" uses the 10s default. On trip,
//	                           a hang report and full diagnostic dump
//	                           go to stderr.
//	GOMP_PPROF_LABELS=1        label team goroutines with
//	                           omp_region/omp_gtid pprof labels
//	GOMP_SIGQUIT=1             dump diagnostics to stderr on SIGQUIT
//	                           (replaces Go's default die-with-stacks;
//	                           unix only)

func init() {
	if v := os.Getenv("GOMP_WATCHDOG"); v != "" && !envOff(v) {
		threshold := time.Duration(0) // 0 selects the default
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			threshold = d
		}
		StartWatchdog(threshold)
	}
	if v := os.Getenv("GOMP_PPROF_LABELS"); v != "" && !envOff(v) {
		kmp.SetProfLabels(true)
	}
	if v := os.Getenv("GOMP_SIGQUIT"); v != "" && !envOff(v) {
		HandleSIGQUIT()
	}
}

func envOff(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "0", "off", "false", "no":
		return true
	}
	return false
}

// DumpDiagnostics writes the runtime's full diagnostic state to w:
// health (watchdog status, stuck workers, dependence cycles), live
// teams with per-worker states, and the flight recorder's most recent
// event history. Reading is sampler-safe — it works while (and exactly
// because) the workload is wedged.
func DumpDiagnostics(w io.Writer) error { return trace.WriteDiagnostics(w) }

// SetFlightRecorder enables or disables the always-on flight recorder
// (default on; GOMP_FLIGHT=off disables it from the environment).
// Disabling stops recording but keeps the captured history readable.
func SetFlightRecorder(on bool) { kmp.SetFlightRecorder(on) }

// SetFlightRingSize sets the per-thread flight-ring capacity in records
// (rounded to a power of two, clamped to [16, 65536]); affects rings
// created after the call. GOMP_FLIGHT=<n> sets it from the environment.
func SetFlightRingSize(records int) { kmp.SetFlightRingSize(records) }

// SetProfileLabels enables or disables pprof region labelling: team
// goroutines carry omp_region ("file.go:42 parallel") and omp_gtid
// labels while inside a parallel region, so CPU/goroutine profiles
// break down by pragma. Off by default — labelling costs two
// SetGoroutineLabels calls per thread per region. Note that enabling
// it makes region join reset the forking goroutine's own label set.
func SetProfileLabels(on bool) { kmp.SetProfLabels(on) }

// WatchdogConfig configures StartWatchdogConfig.
type WatchdogConfig = kmp.WatchdogConfig

// HangReport is a watchdog trip's findings: stuck workers and proven
// dependence cycles.
type HangReport = kmp.HangReport

// StartWatchdog arms the hang/deadlock watchdog with the given trip
// threshold (0 selects the 10s default) and returns a stop function. A
// worker parked in a barrier or stealing sweep past the threshold — or
// a dependence cycle among withheld tasks, detected immediately — trips
// the watchdog: a hang report naming the stuck workers' regions and the
// cycle's pragma locations is written to stderr, followed by a full
// diagnostic dump. /debug/gomp/health and the gomp_health /
// gomp_watchdog_trips_total metrics reflect watchdog state either way.
//
// GOMP_WATCHDOG=1 (or =<duration>) arms it from the environment.
func StartWatchdog(threshold time.Duration) (stop func()) {
	return StartWatchdogConfig(WatchdogConfig{Threshold: threshold})
}

// StartWatchdogConfig is StartWatchdog with full control: custom
// sampling interval and OnTrip handler. A nil OnTrip gets the default
// stderr report + diagnostic dump.
func StartWatchdogConfig(cfg WatchdogConfig) (stop func()) {
	if cfg.OnTrip == nil {
		cfg.OnTrip = func(r *HangReport) {
			fmt.Fprintf(os.Stderr, "gomp: WATCHDOG TRIP — runtime appears hung\n%s\n", r)
			DumpDiagnostics(os.Stderr)
		}
	}
	return kmp.StartWatchdog(cfg)
}

// Health is the runtime's self-diagnosis snapshot, also served as JSON
// at /debug/gomp/health.
type Health = trace.Health

// ReadHealth snapshots runtime health: watchdog state, workers stuck
// past the threshold, and dependence cycles detected right now.
func ReadHealth() Health { return trace.ReadHealth() }
