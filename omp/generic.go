package omp

import (
	"math"
	"unsafe"

	"gomp/internal/atomicx"
	"gomp/internal/kmp"
)

// Current returns the calling goroutine's thread context, or nil outside any
// parallel region. Preprocessor-generated code uses it to service orphaned
// worksharing constructs (a //omp for with no lexically enclosing parallel).
func Current() *Thread { return kmp.Current() }

// Numeric constrains the generic reduction to the types the reduction
// clause accepts for arithmetic and bitwise operators.
type Numeric interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Reduction is the type-inferred reduction cell emitted by the preprocessor:
// `omp.NewReduction(omp.ReduceSum, sum)` infers T from the reduction
// variable, sparing generated code from naming types — the same trick the
// paper plays with Zig's type inference to survive preprocessing without
// semantic context (Section III-B3).
//
// One generic cell serves every Numeric type: the value lives as its bit
// pattern in an atomicx.Uint64, partials fold in T's domain inside the
// paper's Listing 6 CAS loop, and integer sums take the native RMW fast
// path. This single design replaces the per-type atomic cells of the v1 API;
// Int64Reduction and Float64Reduction remain as thin instantiations of it
// (reduce.go).
type Reduction[T Numeric] struct {
	op   ReduceOp
	bits atomicx.Uint64
}

// NewReduction builds a reduction cell seeded with the reduction variable's
// pre-region value.
func NewReduction[T Numeric](op ReduceOp, initial T) *Reduction[T] {
	switch op {
	case ReduceLogicalAnd, ReduceLogicalOr:
		panic("omp: logical reduction operators apply to bool; use BoolReduction")
	}
	r := &Reduction[T]{op: op}
	r.bits.Store(bitsOf(initial))
	return r
}

// Identity returns the operator's identity element for T.
func (r *Reduction[T]) Identity() T {
	var zero T
	switch r.op {
	case ReduceProd:
		return zero + 1
	case ReduceMin:
		return maxValue[T]()
	case ReduceMax:
		return minValue[T]()
	case ReduceBitAnd:
		return allOnes[T]()
	default:
		return zero
	}
}

// Combine folds a thread's partial into the shared result; call once per
// thread after private accumulation. Integer sums use the native atomic add
// (two's-complement addition commutes with the bits encoding); every other
// operator folds in T's domain under the CAS loop.
func (r *Reduction[T]) Combine(partial T) {
	if r.op == ReduceSum && !isFloat[T]() {
		r.bits.Add(bitsOf(partial))
		return
	}
	r.bits.RMW(func(cur uint64) uint64 {
		return bitsOf(reduceFold(r.op, fromBits[T](cur), partial))
	})
}

// Value returns the reduced result; call after the parallel region joins.
func (r *Reduction[T]) Value() T { return fromBits[T](r.bits.Load()) }

// reduceFold applies op to two values of T. Logical operators are excluded
// by construction (NewReduction panics on them). Min/max propagate NaN like
// math.Min/math.Max — a corrupt partial must surface in the result, not be
// silently discarded by an always-false comparison.
func reduceFold[T Numeric](op ReduceOp, a, b T) T {
	switch op {
	case ReduceSum:
		return a + b
	case ReduceProd:
		return a * b
	case ReduceMin:
		if a != a { // NaN (floats only: x != x is never true for integers)
			return a
		}
		if b != b || b < a {
			return b
		}
		return a
	case ReduceMax:
		if a != a {
			return a
		}
		if b != b || b > a {
			return b
		}
		return a
	case ReduceBitAnd:
		return fromIntBits[T](toIntBits(a) & toIntBits(b))
	case ReduceBitOr:
		return fromIntBits[T](toIntBits(a) | toIntBits(b))
	case ReduceBitXor:
		return fromIntBits[T](toIntBits(a) ^ toIntBits(b))
	}
	return a
}

// isFloat reports whether T is a floating-point type. The probe is
// structural — 1/2 is zero exactly for the integer types — so named float
// types (`type celsius float64`) are classified correctly, which a type
// switch on any(zero) would miss.
func isFloat[T Numeric]() bool {
	var zero T
	return T(1)/T(2) != zero
}

// bitsOf encodes v as the uint64 bit pattern the shared cell stores: IEEE
// bits for floats (32-bit floats occupy the low word), sign-extended
// two's complement for integers.
func bitsOf[T Numeric](v T) uint64 {
	if isFloat[T]() {
		if unsafe.Sizeof(v) == 4 {
			return uint64(math.Float32bits(float32(v)))
		}
		return math.Float64bits(float64(v))
	}
	return uint64(int64(v))
}

// fromBits decodes bitsOf's encoding back to T.
func fromBits[T Numeric](b uint64) T {
	var zero T
	if isFloat[T]() {
		if unsafe.Sizeof(zero) == 4 {
			return T(math.Float32frombits(uint32(b)))
		}
		return T(math.Float64frombits(b))
	}
	return T(int64(b))
}

// Only +, -, *, and comparisons are defined across the whole Numeric type
// set (bit operators exclude floats), so the extreme-value helpers below
// probe with arithmetic: unsigned types are recognised by 0-1 wrapping to
// the maximum, signed maxima by doubling until overflow wraps negative.
// Overflow of signed integers is well-defined (wrapping) in Go.

// maxValue returns the largest representable T (min-reduction identity).
func maxValue[T Numeric]() T {
	var zero T
	if isFloat[T]() {
		return T(math.Inf(1))
	}
	if zero-1 > zero { // unsigned: wraps to all ones
		return zero - 1
	}
	hi := T(1)
	for {
		next := hi * 2
		if next <= hi { // wrapped negative: hi is 2^(bits-2)
			break
		}
		hi = next
	}
	return hi - 1 + hi // 2^(bits-1) - 1
}

// minValue returns the smallest representable T (max-reduction identity).
func minValue[T Numeric]() T {
	var zero T
	if isFloat[T]() {
		return T(math.Inf(-1))
	}
	if zero-1 > zero { // unsigned
		return zero
	}
	return -maxValue[T]() - 1 // two's complement
}

// allOnes returns the bit-and identity (~0). For both signed (-1) and
// unsigned (max), that is 0-1. Panics for floats — validation rejects
// bitwise reductions on floating-point variables before codegen.
func allOnes[T Numeric]() T {
	var zero T
	if isFloat[T]() {
		panic("omp: bitwise reduction on floating-point type")
	}
	return zero - 1
}

// toIntBits/fromIntBits move integer T through uint64 for bitwise ops,
// preserving the bit pattern via sign extension both ways. Floats are
// rejected by allOnes/validation before these are reached.
func toIntBits[T Numeric](v T) uint64   { return uint64(int64(v)) }
func fromIntBits[T Numeric](b uint64) T { return T(int64(b)) }
