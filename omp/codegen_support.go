package omp

import "gomp/internal/kmp"

// This file holds the entry points that exist for the preprocessor's
// generated code — the analog of the paper's `.omp.internal` namespace of
// helpers that "are not intended to be used by programmers directly"
// (Section III-C), though nothing stops direct use.

// TripCount re-exports the runtime's canonical-loop trip count so generated
// code needs only the omp import: iterations of `for i := lb; i CMP ub;
// i += st`, with inclusive selecting <=/>=.
func TripCount(lb, ub, st int64, inclusive bool) int64 {
	return kmp.TripCount(lb, ub, st, inclusive)
}

// ReduceIdentity returns the identity element of op for T, inferred from a
// sample value (the reduction variable itself). Generated loop-level
// reductions initialise their per-thread temporary with it, as the OpenMP
// standard requires.
func ReduceIdentity[T Numeric](op ReduceOp, sample T) T {
	_ = sample // only for type inference
	r := Reduction[T]{op: op}
	return r.Identity()
}

// CopyPrivateAssign stores the single-construct winner's published value
// into dst, inferring the type from the destination — the copyprivate
// lowering. The caller must be past the barrier that orders publish before
// fetch.
func CopyPrivateAssign[T any](t *Thread, dst *T) {
	if t == nil || !t.InParallel() {
		return // team of one: dst already holds the value
	}
	*dst = t.CopyPrivateFetch().(T)
}

// CopyPrivatePublish makes v available to CopyPrivateAssign on the other
// team threads. Call from the Single winner before the separating barrier.
func CopyPrivatePublish(t *Thread, v any) {
	if t == nil || !t.InParallel() {
		return
	}
	t.CopyPrivatePublish(v)
}
