package omp

import (
	"sync"

	"gomp/internal/atomicx"
)

// ReduceOp enumerates the OpenMP reduction-clause operators.
type ReduceOp int

const (
	// ReduceSum is reduction(+:…); OpenMP's - operator reduces
	// identically to +, so it shares this op.
	ReduceSum ReduceOp = iota
	// ReduceProd is reduction(*:…) — the operator whose atomic lowering
	// needs the CAS loop of the paper's Listing 6.
	ReduceProd
	// ReduceMin is reduction(min:…).
	ReduceMin
	// ReduceMax is reduction(max:…).
	ReduceMax
	// ReduceBitAnd is reduction(&:…).
	ReduceBitAnd
	// ReduceBitOr is reduction(|:…).
	ReduceBitOr
	// ReduceBitXor is reduction(^:…).
	ReduceBitXor
	// ReduceLogicalAnd is reduction(&&:…), also CAS-loop lowered.
	ReduceLogicalAnd
	// ReduceLogicalOr is reduction(||:…), also CAS-loop lowered.
	ReduceLogicalOr
)

// String returns the OpenMP surface operator.
func (op ReduceOp) String() string {
	switch op {
	case ReduceSum:
		return "+"
	case ReduceProd:
		return "*"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	case ReduceBitAnd:
		return "&"
	case ReduceBitOr:
		return "|"
	case ReduceBitXor:
		return "^"
	case ReduceLogicalAnd:
		return "&&"
	case ReduceLogicalOr:
		return "||"
	}
	return "?"
}

// CombineStrategy selects how per-thread partial results meet the shared
// result — the ablation axis A1 of DESIGN.md.
type CombineStrategy int

const (
	// CombineAtomic merges partials into a shared atomic cell, the
	// paper's lowering: native RMW where available, the Listing 6 CAS
	// loop otherwise.
	CombineAtomic CombineStrategy = iota
	// CombineCritical merges partials under a mutex — what a
	// __kmpc_reduce critical-path fallback does in libomp.
	CombineCritical
)

// typedReduction adds the critical-path ablation strategy on top of the
// generic atomic cell: the v1 per-type reduction API, now a single
// implementation instantiated at int64 and float64. The atomic path is
// exactly Reduction[T]; the critical path folds under a mutex with the same
// operator table.
type typedReduction[T Numeric] struct {
	g        Reduction[T]
	strategy CombineStrategy
	mu       sync.Mutex
	plain    T
}

func (r *typedReduction[T]) init(op ReduceOp, initial T, s CombineStrategy) {
	r.strategy = s
	r.plain = initial
	r.g.op = op
	r.g.bits.Store(bitsOf(initial))
}

// Identity returns the operator's identity element, the value each thread's
// private copy must start from.
func (r *typedReduction[T]) Identity() T { return r.g.Identity() }

// Combine folds a thread's partial into the shared result. Call exactly once
// per thread, after private accumulation.
func (r *typedReduction[T]) Combine(partial T) {
	if r.strategy == CombineCritical {
		r.mu.Lock()
		r.plain = reduceFold(r.g.op, r.plain, partial)
		r.mu.Unlock()
		return
	}
	r.g.Combine(partial)
}

// Value returns the reduced result; call after the parallel region joins.
func (r *typedReduction[T]) Value() T {
	if r.strategy == CombineCritical {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.plain
	}
	return r.g.Value()
}

// ---------------------------------------------------------------- float64

// Float64Reduction lowers a reduction clause over a float64 variable.
//
// Per the OpenMP standard (and Section III-B1 of the paper), each thread
// starts from the operator's identity — Identity() — accumulates privately,
// and folds its partial into the shared result with Combine. The original
// variable's value participates once, via the initial value given at
// construction. Value() returns the final result after the region joins.
type Float64Reduction struct {
	typedReduction[float64]
}

// NewFloat64Reduction builds a reduction cell seeded with the reduction
// variable's pre-region value, using the paper's atomic combine.
func NewFloat64Reduction(op ReduceOp, initial float64) *Float64Reduction {
	return NewFloat64ReductionWith(op, initial, CombineAtomic)
}

// NewFloat64ReductionWith selects the combine strategy explicitly.
func NewFloat64ReductionWith(op ReduceOp, initial float64, s CombineStrategy) *Float64Reduction {
	switch op {
	case ReduceSum, ReduceProd, ReduceMin, ReduceMax:
	default:
		panic("omp: reduction operator " + op.String() + " not defined for float64")
	}
	r := &Float64Reduction{}
	r.init(op, initial, s)
	return r
}

// ------------------------------------------------------------------ int64

// Int64Reduction lowers a reduction clause over an integer variable.
// See Float64Reduction for the protocol.
type Int64Reduction struct {
	typedReduction[int64]
}

// NewInt64Reduction builds a reduction cell seeded with the reduction
// variable's pre-region value, using the paper's atomic combine.
func NewInt64Reduction(op ReduceOp, initial int64) *Int64Reduction {
	return NewInt64ReductionWith(op, initial, CombineAtomic)
}

// NewInt64ReductionWith selects the combine strategy explicitly.
func NewInt64ReductionWith(op ReduceOp, initial int64, s CombineStrategy) *Int64Reduction {
	switch op {
	case ReduceLogicalAnd, ReduceLogicalOr:
		panic("omp: logical reduction operators apply to bool; use BoolReduction")
	}
	r := &Int64Reduction{}
	r.init(op, initial, s)
	return r
}

// ------------------------------------------------------------------- bool

// BoolReduction lowers reduction(&&:…) and reduction(||:…), the logical
// operators the paper implements with the CAS loop because no atomic
// logical RMW exists.
type BoolReduction struct {
	op   ReduceOp
	cell atomicx.Bool
}

// NewBoolReduction builds a logical reduction seeded with the variable's
// pre-region value.
func NewBoolReduction(op ReduceOp, initial bool) *BoolReduction {
	if op != ReduceLogicalAnd && op != ReduceLogicalOr {
		panic("omp: BoolReduction requires && or ||")
	}
	r := &BoolReduction{op: op}
	r.cell.Store(initial)
	return r
}

// Identity returns true for && and false for ||.
func (r *BoolReduction) Identity() bool { return r.op == ReduceLogicalAnd }

// Combine folds a thread's partial into the shared result.
func (r *BoolReduction) Combine(partial bool) {
	if r.op == ReduceLogicalAnd {
		r.cell.LogicalAnd(partial)
	} else {
		r.cell.LogicalOr(partial)
	}
}

// Value returns the reduced result; call after the parallel region joins.
func (r *BoolReduction) Value() bool { return r.cell.Load() }
