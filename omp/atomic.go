package omp

import "gomp/internal/atomicx"

// Atomic cells re-exported for the atomic directive: `//omp atomic` updates
// lower onto these types' RMW methods (native ops where Go provides them,
// the paper's Listing 6 CAS loop for multiply/divide/logical ops).
type (
	// AtomicInt64 lowers atomic updates of integer variables.
	AtomicInt64 = atomicx.Int64
	// AtomicUint64 lowers atomic updates of unsigned variables.
	AtomicUint64 = atomicx.Uint64
	// AtomicFloat64 lowers atomic updates of float variables.
	AtomicFloat64 = atomicx.Float64
	// AtomicBool lowers atomic updates of boolean variables.
	AtomicBool = atomicx.Bool
)
