package omp_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"gomp/omp"
)

func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// ServeDebug(":0") must bind an ephemeral port, report the real bound
// address, and serve every mounted surface: the /debug/gomp suite, the
// pprof suite, and expvar.
func TestServeDebugEphemeralPort(t *testing.T) {
	dbg, err := omp.ServeDebug(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	if strings.HasSuffix(dbg.Addr, ":0") {
		t.Fatalf("Addr %q still has port 0, want resolved port", dbg.Addr)
	}

	// Run a region so /status and /flight have something to show.
	omp.Parallel(func(th *omp.Thread) {}, omp.NumThreads(2),
		omp.Loc("debug_test.go", 1, "smoke"))

	for _, path := range []string{
		"/debug/gomp/status",
		"/debug/gomp/health",
		"/debug/gomp/flight",
		"/debug/gomp/metrics",
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/vars",
	} {
		if code, _ := httpGet(t, dbg.Addr, path); code != 200 {
			t.Errorf("GET %s: code %d, want 200", path, code)
		}
	}

	// /debug/gomp without the trailing slash redirects into the suite.
	code, body := httpGet(t, dbg.Addr, "/debug/gomp")
	if code != 200 || !strings.Contains(body, "status") {
		t.Errorf("/debug/gomp redirect: code %d body %q", code, body)
	}

	// Health must be valid JSON reporting a healthy runtime.
	_, body = httpGet(t, dbg.Addr, "/debug/gomp/health")
	var h struct {
		Healthy bool `json:"healthy"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Healthy {
		t.Errorf("/debug/gomp/health: err=%v healthy=%v body=%q", err, h.Healthy, body)
	}
}

// DumpDiagnostics must work with no profiler, no watchdog and no debug
// server — the always-on guarantee.
func TestDumpDiagnosticsSmoke(t *testing.T) {
	omp.Parallel(func(th *omp.Thread) {}, omp.NumThreads(2),
		omp.Loc("debug_test.go", 2, "dump smoke"))
	var sb strings.Builder
	if err := omp.DumpDiagnostics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gomp diagnostics") || !strings.Contains(out, "healthy:") {
		t.Errorf("dump missing sections:\n%s", out)
	}
}
