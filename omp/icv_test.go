package omp

import (
	"sync"
	"testing"

	"gomp/internal/kmp"
)

// ICV round-trips through the runtime-library routines — the set/get pairs
// a program uses to steer the runtime, previously untested at this layer.

func TestScheduleICVRoundTrip(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	cases := []struct {
		kind  SchedKind
		chunk int
	}{
		{Dynamic, 64},
		{Guided, 8},
		{Static, 0},
		{Trapezoidal, 16},
		{Auto, 0},
	}
	for _, c := range cases {
		SetSchedule(c.kind, c.chunk)
		kind, chunk := GetSchedule()
		if kind != c.kind || chunk != c.chunk {
			t.Errorf("SetSchedule(%v,%d) → GetSchedule() = %v,%d", c.kind, c.chunk, kind, chunk)
		}
	}
}

func TestDynamicICVRoundTrip(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	SetDynamic(true)
	if !GetDynamic() {
		t.Error("SetDynamic(true) not visible through GetDynamic")
	}
	SetDynamic(false)
	if GetDynamic() {
		t.Error("SetDynamic(false) not visible through GetDynamic")
	}
}

func TestThreadLimitCapsTeams(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	if GetThreadLimit() != 0 {
		t.Fatalf("default thread limit = %d, want 0 (unlimited)", GetThreadLimit())
	}
	kmp.UpdateICV(func(v *kmp.ICV) { v.ThreadLimit = 3 })
	if GetThreadLimit() != 3 {
		t.Fatalf("thread limit = %d, want 3", GetThreadLimit())
	}
	size := 0
	Parallel(func(th *Thread) {
		if th.Tid == 0 {
			size = th.NumThreads()
		}
	}, NumThreads(8))
	if size != 3 {
		t.Fatalf("team of 8 with thread-limit 3 forked %d threads", size)
	}
}

func TestMaxActiveLevelsICV(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	if GetMaxActiveLevels() != 1 {
		t.Fatalf("default max-active-levels = %d, want 1", GetMaxActiveLevels())
	}
	SetMaxActiveLevels(2)
	if GetMaxActiveLevels() != 2 {
		t.Fatalf("round trip = %d, want 2", GetMaxActiveLevels())
	}
	SetMaxActiveLevels(-5) // ignored, per the standard
	if GetMaxActiveLevels() != 2 {
		t.Fatalf("negative set changed the ICV to %d", GetMaxActiveLevels())
	}

	// Levels 1 and 2 fork, level 3 serialises.
	var level3Size int
	var mu sync.Mutex
	Parallel(func(outer *Thread) {
		Parallel(func(mid *Thread) {
			if GetActiveLevel() != 2 {
				return
			}
			Parallel(func(inner *Thread) {
				mu.Lock()
				level3Size = inner.NumThreads()
				mu.Unlock()
			}, NumThreads(2))
		}, NumThreads(2))
	}, NumThreads(2))
	if level3Size != 1 {
		t.Fatalf("level-3 region forked %d threads with max-active-levels 2, want 1", level3Size)
	}
}

func TestNestedCompatibilityWrapper(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	if GetNested() {
		t.Error("GetNested() = true by default")
	}
	SetNested(true)
	if !GetNested() || GetMaxActiveLevels() <= 1 {
		t.Errorf("SetNested(true) → GetNested %v, max-active-levels %d",
			GetNested(), GetMaxActiveLevels())
	}
	SetNested(false)
	if GetNested() || GetMaxActiveLevels() != 1 {
		t.Errorf("SetNested(false) → GetNested %v, max-active-levels %d",
			GetNested(), GetMaxActiveLevels())
	}
}

func TestCancellationICVRoundTrip(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	if GetCancellation() {
		t.Error("cancel-var set by default")
	}
	SetCancellation(true)
	if !GetCancellation() {
		t.Error("SetCancellation(true) not visible through GetCancellation")
	}
	SetCancellation(false)
	if GetCancellation() {
		t.Error("SetCancellation(false) not visible through GetCancellation")
	}
}

// GetWtime must be monotonic within a goroutine and measure real elapsed
// time consistently across goroutines: all threads share one epoch, as
// omp_get_wtime's "time in seconds since some time in the past" requires of
// a single device.
func TestGetWtimeMonotonicAcrossGoroutines(t *testing.T) {
	start := GetWtime()
	if GetWtick() <= 0 {
		t.Fatalf("GetWtick() = %v, want > 0", GetWtick())
	}
	const n = 8
	times := make([]float64, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := GetWtime()
			for i := 0; i < 1000; i++ {
				now := GetWtime()
				if now < prev {
					t.Errorf("goroutine %d: wtime went backwards: %v < %v", g, now, prev)
					return
				}
				prev = now
			}
			times[g] = prev
		}(g)
	}
	wg.Wait()
	for g, ts := range times {
		if ts < start {
			t.Errorf("goroutine %d: final wtime %v before the caller's start %v (different epoch?)", g, ts, start)
		}
	}
}
