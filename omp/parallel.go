package omp

import (
	"context"
	"sync"

	"gomp/internal/kmp"
)

// Option configures a Parallel, For or ParallelFor construct — the analog of
// a directive clause. Options not meaningful for a construct are ignored,
// mirroring how the paper's parser accepts a clause set per directive.
type Option func(*config)

type config struct {
	numThreads int
	sched      Sched
	hasSched   bool
	nowait     bool
	ordered    bool
	ifClause   bool
	hasIf      bool
	loc        kmp.Ident
	ctx        context.Context // region teardown binding (WithContext)

	// Tasking clauses (task.go).
	finalClause bool
	hasFinal    bool
	untied      bool
	mergeable   bool
	grainsize   int64
	numTasks    int64
	nogroup     bool
	priority    int32
	deps        []kmp.DepSpec
}

func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

// Because every Option is an opaque func(*config), applying one forces the
// config to escape; a heap-allocated config per construct would put an
// allocation on the fork fast path that the runtime below works hard to
// keep at zero. Constructs therefore draw their config from a pool (and the
// common clause constructors below hand out cached Options, so the clause
// spelling `omp.Parallel(body, omp.NumThreads(4))` allocates nothing).
var cfgPool = sync.Pool{New: func() any { return new(config) }}

func getConfig(opts []Option) *config {
	c := cfgPool.Get().(*config)
	*c = config{}
	c.apply(opts)
	return c
}

func putConfig(c *config) {
	*c = config{} // drop ctx/deps references before pooling
	cfgPool.Put(c)
}

// numThreadsOpts caches the small team-size requests so the num_threads
// clause is allocation-free for every size a real machine has.
var numThreadsOpts = func() [65]Option {
	var a [65]Option
	for i := range a {
		n := i
		a[i] = func(c *config) { c.numThreads = n }
	}
	return a
}()

// NumThreads is the num_threads clause: request a team of n.
func NumThreads(n int) Option {
	if n >= 0 && n < len(numThreadsOpts) {
		return numThreadsOpts[n]
	}
	return func(c *config) { c.numThreads = n }
}

// Schedule is the schedule clause. chunk 0 means unspecified, as in the
// packed encoding of Section III-A2. mods carries the optional
// monotonic/nonmonotonic schedule modifier: Nonmonotonic (the OpenMP 5.0
// default for dynamic-family kinds) runs the loop on the work-stealing
// engine, Monotonic pins it to the legacy shared-counter dispatch.
func Schedule(kind SchedKind, chunk int64, mods ...SchedModifier) Option {
	return func(c *config) {
		c.sched = Sched{Kind: kind, Chunk: chunk}
		c.hasSched = true
		if kind == Static && chunk > 0 {
			c.sched.Kind = kmp.SchedStaticChunked
		}
		for _, m := range mods {
			if c.sched.Mod != 0 && c.sched.Mod != m {
				// monotonic and nonmonotonic are mutually exclusive
				// (OpenMP 5.2 §11.5.3); silently picking one would hide a
				// correctness assumption at the call site.
				panic("omp: Schedule given both Monotonic and Nonmonotonic modifiers")
			}
			c.sched.Mod = m
		}
	}
}

// NoWait is the nowait clause: skip the implicit barrier at the end of a
// worksharing construct.
func NoWait() Option { return noWaitOpt }

var noWaitOpt Option = func(c *config) { c.nowait = true }

// OrderedClause is the ordered clause of a worksharing loop: the loop's
// chunks dispatch monotonically (the compliance path stealing must not
// reorder) and its body may contain Ordered regions, which then execute in
// sequential iteration order.
func OrderedClause() Option { return orderedOpt }

var orderedOpt Option = func(c *config) { c.ordered = true }

// If is the if clause: when cond is false the parallel region executes on a
// team of one.
func If(cond bool) Option {
	if cond {
		return ifTrueOpt
	}
	return ifFalseOpt
}

var (
	ifTrueOpt  Option = func(c *config) { c.ifClause = true; c.hasIf = true }
	ifFalseOpt Option = func(c *config) { c.ifClause = false; c.hasIf = true }
)

// Loc attaches the pragma's source position; generated code passes it so
// runtime traces point at the user's directive.
func Loc(file string, line int, region string) Option {
	return func(c *config) { c.loc = kmp.Ident{File: file, Line: line, Region: region} }
}

// Parallel runs body as an OpenMP parallel region: the lowering of
// `//omp parallel`. body executes once on every team thread; the call
// returns after the implicit join barrier.
func Parallel(body func(t *Thread), opts ...Option) {
	if len(opts) == 0 {
		kmp.ForkCall(kmp.Ident{Region: "parallel"}, 0, body)
		return
	}
	c := getConfig(opts)
	n := c.numThreads
	if c.hasIf && !c.ifClause {
		n = 1
	}
	if c.loc.Region == "" {
		c.loc.Region = "parallel"
	}
	loc, ctx := c.loc, c.ctx
	putConfig(c)
	if ctx != nil {
		kmp.ForkCallCtx(loc, n, ctx, body)
		return
	}
	kmp.ForkCall(loc, n, body)
}

// For runs a worksharing loop of trip iterations inside a parallel region:
// the lowering of `//omp for`. body is invoked for each iteration index in
// [0, trip) assigned to this thread. The loop ends with an implicit barrier
// unless NoWait is given. Without a Schedule option the loop is
// schedule(static).
func For(t *Thread, trip int64, body func(i int64), opts ...Option) {
	ForRange(t, trip, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	}, opts...)
}

// ForRange is For at chunk granularity: body receives each half-open
// iteration range assigned to this thread. Kernels with vectorisable inner
// loops (the NPB ports) use this form to keep the hot loop free of calls.
//
// An orphaned worksharing loop — t nil because no parallel region encloses
// the construct — binds to a team of one and runs the whole range, as the
// OpenMP standard specifies.
func ForRange(t *Thread, trip int64, body func(lo, hi int64), opts ...Option) {
	if len(opts) == 0 {
		// The common schedule(static) loop with the implicit barrier:
		// skipped config machinery keeps the per-loop cost allocation-free.
		if t == nil || !t.InParallel() {
			if trip <= 0 {
				return
			}
			if t.Cancellable() {
				kmp.ForStatic(t, trip, 0, body)
				return
			}
			body(0, trip)
			return
		}
		kmp.ForStatic(t, trip, 0, body)
		t.Barrier()
		return
	}
	c := getConfig(opts)
	defer putConfig(c)
	if t == nil || !t.InParallel() {
		if trip <= 0 {
			return
		}
		// A serialised region of a cancellable team (NumThreads(1),
		// If(false), max-active-levels reached, or a single-processor
		// host) must still observe deadlines and cancel directives:
		// route through the runtime's static driver, whose cancellable
		// path checks the flags between bounded sub-chunks.
		if t.Cancellable() {
			kmp.ForStatic(t, trip, 0, body)
			return
		}
		body(0, trip)
		return
	}
	if c.loc.Region == "" {
		c.loc.Region = "for"
	}
	sched := c.sched
	if !c.hasSched {
		sched = Sched{Kind: Static}
	}
	if c.ordered {
		// The ordered clause needs dispatch's chunk tickets even for
		// static kinds, so every ordered loop routes through the
		// (monotonic) dispatch engine.
		sched.Ordered = true
		kmp.ForDynamic(t, c.loc, sched, trip, body)
	} else {
		switch sched.Kind {
		case Static, kmp.SchedStaticChunked:
			kmp.ForStatic(t, trip, sched.Chunk, body)
		default:
			kmp.ForDynamic(t, c.loc, sched, trip, body)
		}
	}
	if !c.nowait {
		t.Barrier()
	}
}

// Ordered executes body as the ordered region of the current iteration: the
// lowering of `//omp ordered` inside a loop carrying the ordered clause.
// Iterations' ordered regions run in sequential iteration order; the body
// must be encountered at most once per iteration. Outside an ordered-clause
// loop (including orphaned and serialised constructs) body runs immediately.
func Ordered(t *Thread, body func()) {
	if t == nil {
		body()
		return
	}
	t.Ordered(body)
}

// ParallelFor fuses Parallel and For: the lowering of
// `//omp parallel for`. body receives the executing thread and an iteration
// index in [0, trip).
func ParallelFor(trip int64, body func(t *Thread, i int64), opts ...Option) {
	Parallel(func(t *Thread) {
		ForRange(t, trip, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				body(t, i)
			}
		}, opts...)
	}, opts...)
}

// ParallelForRange is ParallelFor at chunk granularity.
func ParallelForRange(trip int64, body func(t *Thread, lo, hi int64), opts ...Option) {
	Parallel(func(t *Thread) {
		ForRange(t, trip, func(lo, hi int64) { body(t, lo, hi) }, opts...)
	}, opts...)
}

// Barrier is the barrier directive.
func Barrier(t *Thread) { t.Barrier() }

// Critical runs body in the named critical section; "" is the unnamed one.
func Critical(name string, body func()) { kmp.Critical(name, body) }

// Single runs body on exactly one team thread: the single directive, with
// the implicit barrier unless NoWait.
func Single(t *Thread, body func(), opts ...Option) {
	nowait := false
	if len(opts) > 0 {
		c := getConfig(opts)
		nowait = c.nowait
		putConfig(c)
	}
	if t.Single() {
		body()
	}
	if !nowait {
		t.Barrier()
	}
}

// Masked runs body on the master thread only (the master/masked directive;
// no implied barrier).
func Masked(t *Thread, body func()) {
	if t.Master() {
		body()
	}
}

// Sections distributes the given blocks over the team: the sections
// directive, one section per function, with the implicit barrier unless
// NoWait.
func Sections(t *Thread, blocks []func(), opts ...Option) {
	c := getConfig(opts)
	defer putConfig(c)
	if t == nil || !t.InParallel() {
		for _, b := range blocks { // orphaned: team of one runs them all
			b()
		}
		return
	}
	if c.loc.Region == "" {
		c.loc.Region = "sections"
	}
	t.Sections(c.loc, len(blocks), func(i int) { blocks[i]() })
	if !c.nowait {
		t.Barrier()
	}
}

// ThreadPrivate is the threadprivate directive: one T per thread, persisting
// across regions. Re-exported from the runtime.
type ThreadPrivate[T any] = kmp.ThreadPrivate[T]

// NewThreadPrivate returns a threadprivate variable; newFn builds each
// thread's first instance (nil for zero values).
func NewThreadPrivate[T any](newFn func() *T) *ThreadPrivate[T] {
	return kmp.NewThreadPrivate[T](newFn)
}
