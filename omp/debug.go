package omp

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"gomp/internal/trace"
)

// Live observability: ServeDebug mounts the runtime's /debug/gomp
// endpoint suite on a background HTTP server, so a serving workload can
// be inspected — worker states, OpenMetrics scrape, on-demand profile
// and timeline windows, imbalance analysis — while it runs. The same
// surface starts automatically when GOMP_DEBUG_ADDR is set and the
// program was built with `gompcc -profile` (see Profile).

// DebugServer is a running debug endpoint server, returned by
// ServeDebug. Close it to stop serving; Addr holds the bound address
// (useful with ":0").
type DebugServer struct {
	// Addr is the listener's resolved address, e.g. "127.0.0.1:46013".
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Close shuts the debug server's listener down. In-flight capture
// windows (/profile, /timeline) finish their window before the
// connection drops.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts an HTTP server on addr (host:port; use ":0" for an
// ephemeral port) exposing:
//
//	/debug/gomp/status    live teams and per-worker states (JSON)
//	/debug/gomp/health    watchdog/stuck-worker/dep-cycle diagnosis
//	/debug/gomp/flight    flight-recorder event history (always on)
//	/debug/gomp/metrics   runtime metrics, OpenMetrics text format
//	/debug/gomp/profile   ?seconds=N windowed capture, text report
//	/debug/gomp/timeline  ?seconds=N windowed capture, Chrome JSON
//	/debug/gomp/regions   per-region imbalance/blame analysis
//	/debug/pprof/         standard Go pprof suite; CPU profiles carry
//	                      omp_region/omp_gtid labels when region
//	                      labelling is on (SetProfileLabels, Profile,
//	                      GOMP_PPROF_LABELS=1)
//	/debug/vars           standard expvar (includes "gomp" once a
//	                      profiler has published its registry)
//
// The server runs on a background goroutine until Close. /status,
// /health, /flight and /metrics work without an active profiler;
// enable one (omp.Profile, trace.Enable, or a windowed ?seconds
// capture) for region history.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("omp: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/gomp/", http.StripPrefix("/debug/gomp", trace.Handler()))
	mux.Handle("/debug/gomp", http.RedirectHandler("/debug/gomp/", http.StatusMovedPermanently))
	// The standard pprof suite, mounted explicitly (the net/http/pprof
	// side-effect registration only touches http.DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}
