package omp

import (
	"runtime"
	"time"

	"gomp/internal/kmp"
)

// Thread is the per-team-member execution context, re-exported from the
// runtime so user code needs only this package.
type Thread = kmp.Thread

// Sched, SchedKind and SchedModifier describe loop schedules (see the
// Schedule option).
type (
	Sched         = kmp.Sched
	SchedKind     = kmp.SchedKind
	SchedModifier = kmp.SchedModifier
)

// Schedule kinds, re-exported with their OpenMP surface names.
const (
	Static      = kmp.SchedStatic
	Dynamic     = kmp.SchedDynamicChunked
	Guided      = kmp.SchedGuidedChunked
	Runtime     = kmp.SchedRuntime
	Auto        = kmp.SchedAuto
	Trapezoidal = kmp.SchedTrapezoidal
)

// Schedule modifiers: Nonmonotonic licenses the work-stealing engine (the
// OpenMP 5.0 default for dynamic-family kinds), Monotonic forces the
// shared-counter dispatch path (implied by the ordered clause).
const (
	Monotonic    = kmp.SchedModMonotonic
	Nonmonotonic = kmp.SchedModNonmonotonic
)

// ParseSchedule parses OMP_SCHEDULE surface syntax — including the
// monotonic:/nonmonotonic: modifier prefix — into a Sched; Sched.String
// renders the round trip ("nonmonotonic:dynamic,4").
func ParseSchedule(s string) (Sched, error) { return kmp.ParseSchedule(s) }

// Lock is omp_lock_t; NestLock is omp_nest_lock_t.
type (
	Lock     = kmp.Lock
	NestLock = kmp.NestLock
)

// NewNestLock returns an unlocked nestable lock (omp_init_nest_lock).
func NewNestLock() *NestLock { return kmp.NewNestLock() }

var wtimeEpoch = time.Now()

// GetWtime returns elapsed wall-clock seconds from a fixed per-process epoch
// (omp_get_wtime). Differences between calls measure intervals; the absolute
// value is meaningless, as the standard allows.
func GetWtime() float64 { return time.Since(wtimeEpoch).Seconds() }

// GetWtick returns the timer resolution in seconds (omp_get_wtick).
func GetWtick() float64 { return 1e-9 } // time.Time is nanosecond-resolved

// GetThreadNum returns the calling thread's number within its team
// (omp_get_thread_num); 0 outside any parallel region. Inside generated
// code prefer t.Tid — this variant pays a goroutine-registry lookup.
func GetThreadNum() int {
	if t := kmp.Current(); t != nil {
		return t.Tid
	}
	return 0
}

// GetNumThreads returns the size of the current team (omp_get_num_threads);
// 1 outside any parallel region.
func GetNumThreads() int {
	if t := kmp.Current(); t != nil {
		return t.NumThreads()
	}
	return 1
}

// GetMaxThreads returns the team size the next parallel region without a
// num_threads clause would get (omp_get_max_threads).
func GetMaxThreads() int { return kmp.GetICV().NumThreads }

// SetNumThreads sets the nthreads-var ICV (omp_set_num_threads).
func SetNumThreads(n int) {
	if n < 1 {
		return // the standard leaves this undefined; ignore like libomp
	}
	kmp.UpdateICV(func(v *kmp.ICV) { v.NumThreads = n })
}

// GetNumProcs returns the number of processors available
// (omp_get_num_procs).
func GetNumProcs() int { return runtime.NumCPU() }

// InParallel reports whether the caller is inside an active parallel region
// (omp_in_parallel).
func InParallel() bool {
	t := kmp.Current()
	return t != nil && t.InParallel()
}

// GetLevel returns the nesting depth of the enclosing parallel regions
// (omp_get_level); 0 outside any region.
func GetLevel() int {
	if t := kmp.Current(); t != nil {
		return t.Level
	}
	return 0
}

// SetSchedule sets the run-sched-var ICV consulted by schedule(runtime)
// loops (omp_set_schedule).
func SetSchedule(kind SchedKind, chunk int) {
	kmp.UpdateICV(func(v *kmp.ICV) { v.RunSched = Sched{Kind: kind, Chunk: int64(chunk)} })
}

// GetSchedule returns the run-sched-var ICV (omp_get_schedule).
func GetSchedule() (SchedKind, int) {
	s := kmp.GetICV().RunSched
	return s.Kind, int(s.Chunk)
}

// SetDynamic sets dyn-var (omp_set_dynamic).
func SetDynamic(on bool) { kmp.UpdateICV(func(v *kmp.ICV) { v.Dynamic = on }) }

// GetDynamic returns dyn-var (omp_get_dynamic).
func GetDynamic() bool { return kmp.GetICV().Dynamic }

// SetMaxActiveLevels sets max-active-levels-var, the number of nested
// parallel regions that may be active — more than one thread — at once
// (omp_set_max_active_levels). 1, the default, serialises nested regions;
// 0 serialises every region. Negative values are ignored, as the standard
// allows.
func SetMaxActiveLevels(n int) {
	if n < 0 {
		return
	}
	kmp.UpdateICV(func(v *kmp.ICV) { v.MaxActiveLevels = n })
}

// GetMaxActiveLevels returns max-active-levels-var
// (omp_get_max_active_levels).
func GetMaxActiveLevels() int { return kmp.GetICV().MaxActiveLevels }

// GetActiveLevel returns the number of enclosing active parallel regions —
// regions executing with more than one thread (omp_get_active_level); 0
// outside any region.
func GetActiveLevel() int {
	if t := kmp.Current(); t != nil {
		return t.ActiveLevel
	}
	return 0
}

// SetNested sets nest-var (omp_set_nested).
//
// Deprecated: nest-var was deprecated in OpenMP 5.0; nesting is governed by
// max-active-levels-var. SetNested(true) is SetMaxActiveLevels(unlimited),
// SetNested(false) is SetMaxActiveLevels(1). Use SetMaxActiveLevels.
func SetNested(on bool) {
	if on {
		SetMaxActiveLevels(kmp.NestedMaxLevels)
	} else {
		SetMaxActiveLevels(1)
	}
}

// GetNested reports whether nested regions may fork real teams
// (omp_get_nested).
//
// Deprecated: see SetNested. Equivalent to GetMaxActiveLevels() > 1.
func GetNested() bool { return kmp.GetICV().MaxActiveLevels > 1 }

// GetThreadLimit returns thread-limit-var, 0 meaning unlimited
// (omp_get_thread_limit).
func GetThreadLimit() int { return kmp.GetICV().ThreadLimit }

// GetCancellation returns cancel-var: whether the cancel directive may
// activate cancellation (omp_get_cancellation, the OMP_CANCELLATION
// environment variable). Regions launched through ParallelErr or bound to a
// context via WithContext are cancellable regardless.
func GetCancellation() bool { return kmp.GetICV().Cancellation }

// SetCancellation sets cancel-var programmatically. An extension: standard
// OpenMP exposes cancel-var only through the environment, but a library API
// has no reason to force a re-exec to flip it.
func SetCancellation(on bool) { kmp.UpdateICV(func(v *kmp.ICV) { v.Cancellation = on }) }

// TrimTeams releases every idle cached team: worker goroutines exit and the
// team structures become garbage. The runtime keeps finished teams warm
// (goroutines parked, structures pooled) so the next Parallel forks without
// allocating; a server that has gone quiet can call TrimTeams to hand that
// memory back. Teams serving in-flight regions are untouched, and the next
// region simply rebuilds from cold. An extension — libomp has no equivalent
// (its kmp_set_defaults knob is close in spirit), but a long-lived Go
// process benefits from an explicit drain.
func TrimTeams() { kmp.TrimTeams() }
