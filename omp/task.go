package omp

import "gomp/internal/kmp"

// Explicit tasking constructs: the user-facing lowering targets of
// `//omp task`, `//omp taskwait`, `//omp taskgroup`, `//omp taskloop` and
// `//omp taskyield`. The runtime behind them (internal/kmp/task.go) runs
// per-thread work-stealing deques; team barriers double as task scheduling
// points, so a single thread may spawn a whole task tree and the rest of
// the team drains it. Tasks carrying depend options form a dataflow DAG
// resolved by the runtime's dependence engine (internal/kmp/taskdep.go):
// a task is withheld from the deques until every predecessor completes.

// Final is the final clause: when cond is true the task — and every task it
// creates, transitively — executes undeferred on the spawning thread. The
// standard cut-off switch for recursive decomposition.
func Final(cond bool) Option {
	return func(c *config) { c.finalClause = cond; c.hasFinal = true }
}

// Untied is the untied clause. Accepted for source compatibility; tasks
// always execute tied to the thread that dequeues them (the conforming
// fallback — untied permits migration, it does not require it).
func Untied() Option { return func(c *config) { c.untied = true } }

// Grainsize is the taskloop grainsize(n) clause: chunks of about n
// iterations per task. Mutually exclusive with NumTasks.
func Grainsize(n int64) Option { return func(c *config) { c.grainsize = n } }

// NumTasks is the taskloop num_tasks(n) clause: n balanced chunk tasks.
// Mutually exclusive with Grainsize.
func NumTasks(n int64) Option { return func(c *config) { c.numTasks = n } }

// NoGroup is the taskloop nogroup clause: do not wait for the chunk tasks
// at the end of the construct (completion moves to the next taskwait,
// taskgroup end or barrier).
func NoGroup() Option { return func(c *config) { c.nogroup = true } }

// Mergeable is the mergeable clause: permission to execute the task merged
// into the generating task's data environment. Accepted and executed
// unmerged — closure capture already shares the environment a merged task
// would reuse, and running every mergeable task unmerged is the conforming
// fallback (mergeable grants a permission, not an obligation).
func Mergeable() Option { return func(c *config) { c.mergeable = true } }

// Priority is the priority clause: ready tasks with higher n are dequeued
// before lower ones and before any unprioritised task (a scheduling hint,
// not an ordering guarantee — dependences, not priorities, express
// ordering). Values below 1 leave the task unprioritised.
func Priority(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.priority = int32(n)
		}
	}
}

// DependIn is depend(in: addr): the task reads the object at addr and is
// ordered after the last previously-spawned sibling task that declared
// DependOut/DependInOut on the same address. name appears in diagnostics;
// addr must be a pointer — pointer identity is the dependence address, so
// every task naming the same object must pass a pointer to the same
// storage (&x for the same x).
func DependIn(name string, addr any) Option {
	return func(c *config) {
		c.deps = append(c.deps, kmp.DepSpec{Name: name, Addr: addr, Mode: kmp.DepIn})
	}
}

// DependOut is depend(out: addr): the task writes the object at addr and is
// ordered after the last sibling writer and after every reader admitted
// since.
func DependOut(name string, addr any) Option {
	return func(c *config) {
		c.deps = append(c.deps, kmp.DepSpec{Name: name, Addr: addr, Mode: kmp.DepOut})
	}
}

// DependInOut is depend(inout: addr): the task both reads and writes the
// object at addr; same ordering constraints as DependOut.
func DependInOut(name string, addr any) Option {
	return func(c *config) {
		c.deps = append(c.deps, kmp.DepSpec{Name: name, Addr: addr, Mode: kmp.DepInOut})
	}
}

// Task spawns body as an explicit task: the lowering of `//omp task`.
// t must be the calling thread (nil outside any parallel region, where the
// task executes immediately). body receives the thread that eventually
// executes the task — for a stolen task a different one than t — so nested
// constructs inside the body bind to the executor.
//
// An If(false) or Final(true) task is undeferred: it executes on the
// calling thread before Task returns, as the standard requires.
func Task(t *Thread, body func(t *Thread), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "task"
	}
	undeferred := c.hasIf && !c.ifClause
	final := c.hasFinal && c.finalClause
	if t == nil || t.Team() == nil {
		// Outside any team: the initial thread runs the task inline.
		// Program order is creation order, a valid topological order of
		// any dependence DAG, so depend options are trivially satisfied.
		body(t)
		return
	}
	t.SpawnTask(c.loc, body, kmp.TaskOpts{
		Undeferred: undeferred,
		Final:      final,
		Untied:     c.untied,
		Mergeable:  c.mergeable,
		Priority:   c.priority,
		Deps:       c.deps,
	})
}

// Taskwait blocks until all child tasks spawned by the current task have
// completed: the lowering of `//omp taskwait`. While waiting, the thread
// executes other ready tasks.
func Taskwait(t *Thread) { t.Taskwait() }

// Taskyield is the standalone `//omp taskyield` directive: a task
// scheduling point at which the thread may execute another ready task
// before resuming the current one. Outside any team it is a no-op.
func Taskyield(t *Thread) { t.Taskyield() }

// Taskgroup runs body and then waits for every task spawned inside it,
// including transitively created descendants: the lowering of
// `//omp taskgroup`.
func Taskgroup(t *Thread, body func(), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "taskgroup"
	}
	t.TaskgroupRun(c.loc, body)
}

// Taskloop chunks [0, trip) into explicit tasks: the lowering of
// `//omp taskloop`, and a second, task-granular scheduling strategy for
// loops next to For's static/dynamic dispatch. body receives each chunk
// with the thread executing it. Granularity comes from Grainsize or
// NumTasks (default: two chunks per team thread); the call waits for all
// chunks unless NoGroup is given.
func Taskloop(t *Thread, trip int64, body func(t *Thread, lo, hi int64), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "taskloop"
	}
	undeferred := c.hasIf && !c.ifClause
	if t == nil || !t.InParallel() {
		if trip > 0 {
			body(t, 0, trip)
		}
		return
	}
	t.Taskloop(c.loc, trip, c.grainsize, c.numTasks, c.nogroup, undeferred, c.priority, body)
}
