package omp

// Explicit tasking constructs: the user-facing lowering targets of
// `//omp task`, `//omp taskwait`, `//omp taskgroup` and `//omp taskloop`.
// The runtime behind them (internal/kmp/task.go) runs per-thread
// work-stealing deques; team barriers double as task scheduling points, so
// a single thread may spawn a whole task tree and the rest of the team
// drains it.

// Final is the final clause: when cond is true the task — and every task it
// creates, transitively — executes undeferred on the spawning thread. The
// standard cut-off switch for recursive decomposition.
func Final(cond bool) Option {
	return func(c *config) { c.finalClause = cond; c.hasFinal = true }
}

// Untied is the untied clause. Accepted for source compatibility; tasks
// always execute tied to the thread that dequeues them (the conforming
// fallback — untied permits migration, it does not require it).
func Untied() Option { return func(c *config) { c.untied = true } }

// Grainsize is the taskloop grainsize(n) clause: chunks of about n
// iterations per task. Mutually exclusive with NumTasks.
func Grainsize(n int64) Option { return func(c *config) { c.grainsize = n } }

// NumTasks is the taskloop num_tasks(n) clause: n balanced chunk tasks.
// Mutually exclusive with Grainsize.
func NumTasks(n int64) Option { return func(c *config) { c.numTasks = n } }

// NoGroup is the taskloop nogroup clause: do not wait for the chunk tasks
// at the end of the construct (completion moves to the next taskwait,
// taskgroup end or barrier).
func NoGroup() Option { return func(c *config) { c.nogroup = true } }

// Task spawns body as an explicit task: the lowering of `//omp task`.
// t must be the calling thread (nil outside any parallel region, where the
// task executes immediately). body receives the thread that eventually
// executes the task — for a stolen task a different one than t — so nested
// constructs inside the body bind to the executor.
//
// An If(false) or Final(true) task is undeferred: it executes on the
// calling thread before Task returns, as the standard requires.
func Task(t *Thread, body func(t *Thread), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "task"
	}
	undeferred := c.hasIf && !c.ifClause
	final := c.hasFinal && c.finalClause
	if t == nil || t.Team() == nil {
		// Outside any team: the initial thread runs the task inline.
		body(t)
		return
	}
	t.TaskSpawn(c.loc, body, undeferred, final, c.untied)
}

// Taskwait blocks until all child tasks spawned by the current task have
// completed: the lowering of `//omp taskwait`. While waiting, the thread
// executes other ready tasks.
func Taskwait(t *Thread) { t.Taskwait() }

// Taskgroup runs body and then waits for every task spawned inside it,
// including transitively created descendants: the lowering of
// `//omp taskgroup`.
func Taskgroup(t *Thread, body func(), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "taskgroup"
	}
	t.TaskgroupRun(c.loc, body)
}

// Taskloop chunks [0, trip) into explicit tasks: the lowering of
// `//omp taskloop`, and a second, task-granular scheduling strategy for
// loops next to For's static/dynamic dispatch. body receives each chunk
// with the thread executing it. Granularity comes from Grainsize or
// NumTasks (default: two chunks per team thread); the call waits for all
// chunks unless NoGroup is given.
func Taskloop(t *Thread, trip int64, body func(t *Thread, lo, hi int64), opts ...Option) {
	var c config
	c.apply(opts)
	if c.loc.Region == "" {
		c.loc.Region = "taskloop"
	}
	undeferred := c.hasIf && !c.ifClause
	if t == nil || !t.InParallel() {
		if trip > 0 {
			body(t, 0, trip)
		}
		return
	}
	t.Taskloop(c.loc, trip, c.grainsize, c.numTasks, c.nogroup, undeferred, body)
}
