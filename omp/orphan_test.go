package omp

import (
	"sync/atomic"
	"testing"
)

// Orphaned constructs — called with no enclosing parallel region — must
// behave as a team of one, per the OpenMP orphaning rules. The
// preprocessor emits omp.Current() for these, which returns nil outside
// any region.

func TestOrphanedForRangeRunsWholeSpace(t *testing.T) {
	var sum int64
	ForRange(nil, 100, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	}, Schedule(Dynamic, 8))
	if sum != 99*100/2 {
		t.Fatalf("orphaned ForRange covered sum %d", sum)
	}
}

func TestOrphanedForRangeZeroTrip(t *testing.T) {
	ForRange(nil, 0, func(lo, hi int64) {
		t.Error("body invoked for zero-trip orphaned loop")
	})
}

func TestOrphanedSectionsRunAll(t *testing.T) {
	var a, b int
	Sections(nil, []func(){
		func() { a = 1 },
		func() { b = 2 },
	})
	if a != 1 || b != 2 {
		t.Fatalf("orphaned sections ran a=%d b=%d", a, b)
	}
}

func TestOrphanedSingleAndMaster(t *testing.T) {
	runs := 0
	Single(nil, func() { runs++ })
	Masked(nil, func() { runs++ })
	Barrier(nil) // must not block
	if runs != 2 {
		t.Fatalf("orphaned single+master ran %d blocks, want 2", runs)
	}
}

func TestOrphanedCopyPrivateHelpers(t *testing.T) {
	// Team of one: publish is a no-op and assign leaves dst untouched
	// (it already holds the single's value).
	v := 42
	CopyPrivatePublish(nil, v)
	CopyPrivateAssign(nil, &v)
	if v != 42 {
		t.Fatalf("orphaned copyprivate corrupted value: %d", v)
	}
}

func TestSingleNoWaitStillRunsOnce(t *testing.T) {
	var runs atomic.Int32
	Parallel(func(th *Thread) {
		Single(th, func() { runs.Add(1) }, NoWait())
		Barrier(th)
	}, NumThreads(4))
	if runs.Load() != 1 {
		t.Fatalf("single nowait ran %d times", runs.Load())
	}
}

func TestSectionsNoWait(t *testing.T) {
	var done [5]atomic.Int32
	Parallel(func(th *Thread) {
		blocks := make([]func(), 5)
		for i := range blocks {
			i := i
			blocks[i] = func() { done[i].Add(1) }
		}
		Sections(th, blocks, NoWait())
		Barrier(th)
	}, NumThreads(3))
	for i := range done {
		if done[i].Load() != 1 {
			t.Fatalf("section %d ran %d times", i, done[i].Load())
		}
	}
}

func TestParallelForRangeChunkGranularity(t *testing.T) {
	// ForRange hands whole chunks: with schedule(static,16) over 64
	// iterations and 4 threads, each thread sees exactly one chunk of 16
	// per round-robin slot.
	var chunks atomic.Int32
	ParallelForRange(64, func(th *Thread, lo, hi int64) {
		chunks.Add(1)
		if hi-lo != 16 {
			t.Errorf("chunk [%d,%d) size %d, want 16", lo, hi, hi-lo)
		}
	}, NumThreads(4), Schedule(Static, 16))
	if chunks.Load() != 4 {
		t.Fatalf("chunks = %d, want 4", chunks.Load())
	}
}

func TestNestLockThroughOmp(t *testing.T) {
	l := NewNestLock()
	if l.LockAcquire() != 1 || l.LockAcquire() != 2 {
		t.Fatal("nest lock counts wrong")
	}
	l.Unlock()
	l.Unlock()
}

func TestGetThreadLimitDefault(t *testing.T) {
	if GetThreadLimit() < 0 {
		t.Fatal("negative thread limit")
	}
}
