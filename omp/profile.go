package omp

import (
	"fmt"
	"os"

	"gomp/internal/kmp"
	"gomp/internal/trace"
)

// Profiling entry points for user programs and for the compiler's
// -profile mode. The heavy machinery lives in the internal trace
// package; these wrappers exist because preprocessed user code can only
// import the public module surface, and `gompcc -profile` injects calls
// to them with real source coordinates.

// Profile enables the process-wide profiler and returns a stop function
// that writes a gprof-style flat profile of every parallel region, loop,
// task construct and instrumented function to stderr. Typical use — and
// what `gompcc -profile` injects into main:
//
//	defer omp.Profile()()
//
// Environment switches honoured by the stop function:
//
//	GOMP_TRACE_JSON=<path>  also export the full event timeline as
//	                        Chrome trace-event JSON to <path>, loadable
//	                        in Perfetto (ui.perfetto.dev) or
//	                        chrome://tracing, with one track per runtime
//	                        thread and work steals drawn as flow arrows.
//	GOMP_METRICS=1          also print the runtime metrics snapshot
//	                        (fork/barrier/steal/task counters, wait-time
//	                        histograms).
//	GOMP_DEBUG_ADDR=<addr>  additionally serve the live /debug/gomp
//	                        endpoint suite (status, OpenMetrics, profile
//	                        and timeline windows, imbalance analysis) on
//	                        <addr> for the lifetime of the program — see
//	                        ServeDebug. ":0" picks an ephemeral port;
//	                        the bound address is printed to stderr.
func Profile() func() {
	jsonPath := os.Getenv("GOMP_TRACE_JSON")
	var opts []trace.Option
	if jsonPath != "" {
		opts = append(opts, trace.WithTimeline(0))
	}
	p := trace.Enable(opts...)
	// While profiling, also label team goroutines for pprof so a CPU
	// profile taken during the run attributes samples to pragma
	// locations; restored to its previous setting at stop.
	prevLabels := kmp.ProfLabelsEnabled()
	kmp.SetProfLabels(true)
	var dbg *DebugServer
	if addr := os.Getenv("GOMP_DEBUG_ADDR"); addr != "" {
		var err error
		if dbg, err = ServeDebug(addr); err != nil {
			fmt.Fprintf(os.Stderr, "gomp: %v\n", err)
		} else {
			p.Metrics().PublishExpvar()
			fmt.Fprintf(os.Stderr, "gomp: debug server on http://%s/debug/gomp/\n", dbg.Addr)
		}
	}
	return func() {
		kmp.SetProfLabels(prevLabels)
		if dbg != nil {
			dbg.Close()
		}
		if trace.Default() == p {
			trace.Disable()
		} else {
			p.Stop()
		}
		fmt.Fprintf(os.Stderr, "gomp profile:\n%s", p.Report())
		if os.Getenv("GOMP_METRICS") != "" {
			fmt.Fprint(os.Stderr, p.Metrics().Text())
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err == nil {
				err = p.WriteTimeline(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "gomp: timeline export failed: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "gomp: timeline written to %s\n", jsonPath)
			}
		}
	}
}

// ZoneAt opens a profiling span attributed to a source location and
// returns its closer; `gompcc -profile` injects
// `defer omp.ZoneAt(file, line, funcName)()` into functions containing
// pragmas. When no profiler is active both calls are no-ops.
func ZoneAt(file string, line int, name string) func() {
	return trace.ZoneAt(file, line, name)
}
