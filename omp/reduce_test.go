package omp

import (
	"math"
	"testing"
)

// reduceFloat64 runs the canonical generated-code pattern for a float64
// reduction over [0,trip) where each iteration contributes f(i).
func reduceFloat64(op ReduceOp, initial float64, trip int64, f func(int64) float64, s CombineStrategy) float64 {
	r := NewFloat64ReductionWith(op, initial, s)
	Parallel(func(t *Thread) {
		local := r.Identity()
		For(t, trip, func(i int64) {
			switch op {
			case ReduceSum:
				local += f(i)
			case ReduceProd:
				local *= f(i)
			case ReduceMin:
				local = math.Min(local, f(i))
			case ReduceMax:
				local = math.Max(local, f(i))
			}
		})
		r.Combine(local)
	}, NumThreads(4))
	return r.Value()
}

func TestFloat64SumReduction(t *testing.T) {
	for _, s := range []CombineStrategy{CombineAtomic, CombineCritical} {
		got := reduceFloat64(ReduceSum, 100, 1000, func(i int64) float64 { return 1 }, s)
		if got != 1100 {
			t.Fatalf("strategy %d: sum = %g, want 1100 (init participates once)", s, got)
		}
	}
}

func TestFloat64ProdReduction(t *testing.T) {
	// Product of 2^10 split across threads — exact in float64.
	for _, s := range []CombineStrategy{CombineAtomic, CombineCritical} {
		got := reduceFloat64(ReduceProd, 0.5, 10, func(i int64) float64 { return 2 }, s)
		if got != 512 {
			t.Fatalf("strategy %d: prod = %g, want 0.5*2^10 = 512", s, got)
		}
	}
}

func TestFloat64MinMaxReduction(t *testing.T) {
	vals := func(i int64) float64 { return float64((i*7919)%1000) - 500 }
	gotMin := reduceFloat64(ReduceMin, math.Inf(1), 1000, vals, CombineAtomic)
	gotMax := reduceFloat64(ReduceMax, math.Inf(-1), 1000, vals, CombineAtomic)
	wantMin, wantMax := math.Inf(1), math.Inf(-1)
	for i := int64(0); i < 1000; i++ {
		wantMin = math.Min(wantMin, vals(i))
		wantMax = math.Max(wantMax, vals(i))
	}
	if gotMin != wantMin || gotMax != wantMax {
		t.Fatalf("min/max = %g/%g, want %g/%g", gotMin, gotMax, wantMin, wantMax)
	}
}

func TestFloat64ReductionIdentity(t *testing.T) {
	cases := map[ReduceOp]float64{
		ReduceSum:  0,
		ReduceProd: 1,
		ReduceMin:  math.Inf(1),
		ReduceMax:  math.Inf(-1),
	}
	for op, want := range cases {
		if got := NewFloat64Reduction(op, 0).Identity(); got != want {
			t.Errorf("float64 identity(%s) = %g, want %g", op, got, want)
		}
	}
}

func TestFloat64ReductionRejectsBitwise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("float64 reduction with & did not panic")
		}
	}()
	NewFloat64Reduction(ReduceBitAnd, 0)
}

func TestInt64Reductions(t *testing.T) {
	type tc struct {
		op      ReduceOp
		initial int64
		trip    int64
		f       func(int64) int64
		want    int64
	}
	cases := []tc{
		{ReduceSum, 5, 100, func(i int64) int64 { return i }, 5 + 99*100/2},
		{ReduceProd, 1, 20, func(i int64) int64 { return 2 }, 1 << 20},
		{ReduceMin, math.MaxInt64, 100, func(i int64) int64 { return 50 - i }, -49},
		{ReduceMax, math.MinInt64, 100, func(i int64) int64 { return 50 - i }, 50},
		{ReduceBitOr, 0, 8, func(i int64) int64 { return 1 << i }, 0xFF},
		{ReduceBitAnd, -1, 4, func(i int64) int64 { return ^(1 << i) }, ^int64(0xF)},
		{ReduceBitXor, 0, 7, func(i int64) int64 { return i }, 0 ^ 1 ^ 2 ^ 3 ^ 4 ^ 5 ^ 6},
	}
	for _, c := range cases {
		for _, s := range []CombineStrategy{CombineAtomic, CombineCritical} {
			r := NewInt64ReductionWith(c.op, c.initial, s)
			Parallel(func(t *Thread) {
				local := r.Identity()
				For(t, c.trip, func(i int64) {
					local = reduceFold(c.op, local, c.f(i))
				})
				r.Combine(local)
			}, NumThreads(4))
			if got := r.Value(); got != c.want {
				t.Errorf("op %s strategy %d: got %d, want %d", c.op, s, got, c.want)
			}
		}
	}
}

func TestInt64ReductionIdentity(t *testing.T) {
	cases := map[ReduceOp]int64{
		ReduceSum:    0,
		ReduceProd:   1,
		ReduceMin:    math.MaxInt64,
		ReduceMax:    math.MinInt64,
		ReduceBitAnd: -1,
		ReduceBitOr:  0,
		ReduceBitXor: 0,
	}
	for op, want := range cases {
		if got := NewInt64Reduction(op, 0).Identity(); got != want {
			t.Errorf("int64 identity(%s) = %d, want %d", op, got, want)
		}
	}
}

func TestInt64ReductionRejectsLogical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("int64 reduction with && did not panic")
		}
	}()
	NewInt64Reduction(ReduceLogicalAnd, 0)
}

func TestBoolReductions(t *testing.T) {
	// AND over 1000 trues with one false at i=617.
	and := NewBoolReduction(ReduceLogicalAnd, true)
	Parallel(func(t *Thread) {
		local := and.Identity()
		For(t, 1000, func(i int64) { local = local && (i != 617) })
		and.Combine(local)
	}, NumThreads(4))
	if and.Value() {
		t.Fatal("AND reduction over a false contribution = true")
	}
	// OR over 1000 falses with one true.
	or := NewBoolReduction(ReduceLogicalOr, false)
	Parallel(func(t *Thread) {
		local := or.Identity()
		For(t, 1000, func(i int64) { local = local || (i == 617) })
		or.Combine(local)
	}, NumThreads(4))
	if !or.Value() {
		t.Fatal("OR reduction over a true contribution = false")
	}
}

func TestBoolReductionIdentity(t *testing.T) {
	if !NewBoolReduction(ReduceLogicalAnd, false).Identity() {
		t.Error("identity(&&) = false, want true")
	}
	if NewBoolReduction(ReduceLogicalOr, true).Identity() {
		t.Error("identity(||) = true, want false")
	}
}

func TestBoolReductionRejectsArithmetic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bool reduction with + did not panic")
		}
	}()
	NewBoolReduction(ReduceSum, false)
}

func TestReduceOpString(t *testing.T) {
	want := map[ReduceOp]string{
		ReduceSum: "+", ReduceProd: "*", ReduceMin: "min", ReduceMax: "max",
		ReduceBitAnd: "&", ReduceBitOr: "|", ReduceBitXor: "^",
		ReduceLogicalAnd: "&&", ReduceLogicalOr: "||",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("ReduceOp(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
	if ReduceOp(99).String() != "?" {
		t.Error("unknown op should stringify to ?")
	}
}

// The initial value must participate exactly once regardless of team size.
func TestReductionInitialValueOnce(t *testing.T) {
	for _, nth := range []int{1, 2, 7} {
		r := NewInt64Reduction(ReduceSum, 1000)
		Parallel(func(t *Thread) {
			local := r.Identity()
			For(t, 10, func(i int64) { local += 1 })
			r.Combine(local)
		}, NumThreads(nth))
		if got := r.Value(); got != 1010 {
			t.Fatalf("nth=%d: value = %d, want 1010", nth, got)
		}
	}
}
