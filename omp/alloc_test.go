package omp

import (
	"fmt"
	"runtime/debug"
	"testing"
)

// The serving guarantee at the public API: once a team is warm, a
// non-cancellable Parallel region — with or without the common options —
// allocates nothing per region. This is the property that lets a
// request-per-region server run at a steady heap size. CI runs this test;
// it is the regression guard for the whole fork fast path (pooled teams,
// pooled configs, cached options, hoisted closures).
func TestParallelWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops items at random under -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, n := range []int{1, 2} {
		n := n
		t.Run(fmt.Sprintf("threads=%d", n), func(t *testing.T) {
			body := func(t *Thread) {}
			Parallel(body, NumThreads(n)) // spawn workers, prime pools
			if got := testing.AllocsPerRun(100, func() {
				Parallel(body, NumThreads(n))
			}); got != 0 {
				t.Fatalf("warm Parallel(NumThreads(%d)): %.1f allocs/region, want 0", n, got)
			}
		})
	}
}

// The no-options path and a worksharing loop inside the region must also
// stay allocation-free: ForRange's implicit barrier and static scheduling
// run entirely on team-owned state.
func TestParallelForRangeWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops items at random under -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var data [256]float64
	sums := [2]struct {
		v float64
		_ [56]byte
	}{}
	body := func(t *Thread) {
		tid := t.Tid
		ForRange(t, int64(len(data)), func(lo, hi int64) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			sums[tid].v += s
		})
	}
	Parallel(body, NumThreads(2))
	if got := testing.AllocsPerRun(100, func() { Parallel(body, NumThreads(2)) }); got != 0 {
		t.Fatalf("warm Parallel+ForRange: %.1f allocs/region, want 0", got)
	}
}
