package omp

import (
	"math"
	"testing"
)

func TestGenericIdentities(t *testing.T) {
	if got := NewReduction(ReduceSum, 0.0).Identity(); got != 0 {
		t.Errorf("float sum identity = %g", got)
	}
	if got := NewReduction(ReduceProd, 0).Identity(); got != 1 {
		t.Errorf("int prod identity = %d", got)
	}
	if got := NewReduction[int8](ReduceMin, 0).Identity(); got != math.MaxInt8 {
		t.Errorf("int8 min identity = %d, want %d", got, math.MaxInt8)
	}
	if got := NewReduction[int8](ReduceMax, 0).Identity(); got != math.MinInt8 {
		t.Errorf("int8 max identity = %d, want %d", got, math.MinInt8)
	}
	if got := NewReduction[int64](ReduceMin, 0).Identity(); got != math.MaxInt64 {
		t.Errorf("int64 min identity = %d", got)
	}
	if got := NewReduction[int64](ReduceMax, 0).Identity(); got != math.MinInt64 {
		t.Errorf("int64 max identity = %d", got)
	}
	if got := NewReduction[uint16](ReduceMin, 0).Identity(); got != math.MaxUint16 {
		t.Errorf("uint16 min identity = %d", got)
	}
	if got := NewReduction[uint16](ReduceMax, 9).Identity(); got != 0 {
		t.Errorf("uint16 max identity = %d", got)
	}
	if got := NewReduction[float32](ReduceMin, 0).Identity(); !math.IsInf(float64(got), 1) {
		t.Errorf("float32 min identity = %g", got)
	}
	if got := NewReduction[uint8](ReduceBitAnd, 0).Identity(); got != 0xFF {
		t.Errorf("uint8 bitand identity = %x", got)
	}
	if got := NewReduction[int32](ReduceBitAnd, 0).Identity(); got != -1 {
		t.Errorf("int32 bitand identity = %d", got)
	}
}

func TestGenericReductionEndToEnd(t *testing.T) {
	// The preprocessor-generated pattern, with type inferred from the
	// seed variable.
	sum := 3.5
	r := NewReduction(ReduceSum, sum)
	Parallel(func(th *Thread) {
		local := r.Identity()
		For(th, 1000, func(i int64) { local += 0.5 })
		r.Combine(local)
	}, NumThreads(4))
	if got := r.Value(); got != 3.5+500 {
		t.Fatalf("generic sum = %g, want 503.5", got)
	}

	prod := NewReduction(ReduceProd, int64(3))
	Parallel(func(th *Thread) {
		local := prod.Identity()
		For(th, 10, func(i int64) { local *= 2 })
		prod.Combine(local)
	}, NumThreads(4))
	if got := prod.Value(); got != 3*1024 {
		t.Fatalf("generic prod = %d, want 3072", got)
	}
}

func TestGenericBitwise(t *testing.T) {
	or := NewReduction(ReduceBitOr, uint32(0))
	Parallel(func(th *Thread) {
		local := or.Identity()
		For(th, 8, func(i int64) { local |= 1 << uint(i) })
		or.Combine(local)
	}, NumThreads(3))
	if got := or.Value(); got != 0xFF {
		t.Fatalf("generic or = %x, want ff", got)
	}

	and := NewReduction(ReduceBitAnd, int32(-1))
	Parallel(func(th *Thread) {
		local := and.Identity()
		For(th, 4, func(i int64) { local &= ^(int32(1) << uint(i)) })
		and.Combine(local)
	}, NumThreads(2))
	if got := and.Value(); got != ^int32(0xF) {
		t.Fatalf("generic and = %x, want %x", got, ^int32(0xF))
	}

	xor := NewReduction(ReduceBitXor, uint64(0))
	Parallel(func(th *Thread) {
		local := xor.Identity()
		For(th, 7, func(i int64) { local ^= uint64(i) })
		xor.Combine(local)
	}, NumThreads(2))
	want := uint64(0 ^ 1 ^ 2 ^ 3 ^ 4 ^ 5 ^ 6)
	if got := xor.Value(); got != want {
		t.Fatalf("generic xor = %x, want %x", got, want)
	}
}

func TestGenericMinMax(t *testing.T) {
	mn := NewReduction(ReduceMin, math.Inf(1))
	mx := NewReduction(ReduceMax, math.Inf(-1))
	Parallel(func(th *Thread) {
		lmn, lmx := mn.Identity(), mx.Identity()
		For(th, 1000, func(i int64) {
			v := float64((i*31)%997) - 500
			lmn = math.Min(lmn, v)
			lmx = math.Max(lmx, v)
		})
		mn.Combine(lmn)
		mx.Combine(lmx)
	}, NumThreads(4))
	wantMn, wantMx := math.Inf(1), math.Inf(-1)
	for i := int64(0); i < 1000; i++ {
		v := float64((i*31)%997) - 500
		wantMn = math.Min(wantMn, v)
		wantMx = math.Max(wantMx, v)
	}
	if mn.Value() != wantMn || mx.Value() != wantMx {
		t.Fatalf("min/max = %g/%g, want %g/%g", mn.Value(), mx.Value(), wantMn, wantMx)
	}
}

func TestGenericRejectsLogical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReduction(&&) did not panic")
		}
	}()
	NewReduction(ReduceLogicalAnd, 1)
}

func TestGenericBitAndOnFloatPanics(t *testing.T) {
	r := NewReduction(ReduceBitAnd, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("Identity of float bitand did not panic")
		}
	}()
	r.Identity()
}

func TestCurrentMatchesThread(t *testing.T) {
	Parallel(func(th *Thread) {
		if Current() != th {
			t.Errorf("Current() != th inside region")
		}
	}, NumThreads(3))
	if Current() != nil {
		t.Error("Current() outside region != nil")
	}
}

// Min/max reductions must propagate NaN like math.Min/math.Max: a corrupt
// partial surfaces in the result instead of losing every comparison.
func TestReductionNaNPropagates(t *testing.T) {
	nan := math.NaN()
	for _, op := range []ReduceOp{ReduceMin, ReduceMax} {
		r := NewReduction(op, 1.0)
		r.Combine(5.0)
		r.Combine(nan)
		r.Combine(2.0)
		if v := r.Value(); !math.IsNaN(v) {
			t.Errorf("generic %s with NaN partial = %v, want NaN", op, v)
		}
		f := NewFloat64ReductionWith(op, 1.0, CombineCritical)
		f.Combine(nan)
		f.Combine(3.0)
		if v := f.Value(); !math.IsNaN(v) {
			t.Errorf("critical %s with NaN partial = %v, want NaN", op, v)
		}
	}
}
