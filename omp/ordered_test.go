package omp_test

import (
	"sync/atomic"
	"testing"

	"gomp/omp"
)

// The ordered construct through the public surface: a parallel loop carrying
// OrderedClause must run its Ordered regions in iteration order, under every
// schedule kind the clause can combine with.
func TestOrderedParallelFor(t *testing.T) {
	for _, opts := range [][]omp.Option{
		{omp.OrderedClause()},
		{omp.OrderedClause(), omp.Schedule(omp.Dynamic, 1)},
		{omp.OrderedClause(), omp.Schedule(omp.Dynamic, 7, omp.Monotonic)},
		{omp.OrderedClause(), omp.Schedule(omp.Guided, 4)},
		{omp.OrderedClause(), omp.Schedule(omp.Static, 5)},
	} {
		const trip = 200
		var got []int64
		omp.Parallel(func(th *omp.Thread) {
			omp.For(th, trip, func(i int64) {
				omp.Ordered(th, func() { got = append(got, i) })
			}, opts...)
		}, omp.NumThreads(4))
		if len(got) != trip {
			t.Fatalf("ordered ran %d regions, want %d", len(got), trip)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("position %d holds iteration %d (out of order)", i, v)
			}
		}
	}
}

// Ordered binds to a team of one (orphaned / serialised constructs) by
// degenerating to direct execution.
func TestOrderedSerialised(t *testing.T) {
	var got []int64
	omp.ParallelFor(10, func(th *omp.Thread, i int64) {
		omp.Ordered(th, func() { got = append(got, i) })
	}, omp.NumThreads(1), omp.OrderedClause())
	if len(got) != 10 {
		t.Fatalf("serial ordered ran %d regions", len(got))
	}
	ran := false
	omp.Ordered(nil, func() { ran = true })
	if !ran {
		t.Fatal("nil-thread Ordered did not run")
	}
}

// Schedule modifiers through the public option: both engines must cover the
// iteration space exactly once.
func TestScheduleModifierCoverage(t *testing.T) {
	const trip = 5000
	for _, mod := range []omp.SchedModifier{omp.Monotonic, omp.Nonmonotonic} {
		counts := make([]atomic.Int32, trip)
		omp.ParallelFor(trip, func(_ *omp.Thread, i int64) {
			counts[i].Add(1)
		}, omp.NumThreads(8), omp.Schedule(omp.Dynamic, 3, mod))
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("mod %v: iteration %d ran %d times", mod, i, c)
			}
		}
	}
}

// schedule(auto) is now static-seed + stealing, not an alias of static: it
// must still cover exactly once, including under heavy imbalance.
func TestAutoScheduleCoverage(t *testing.T) {
	const trip = 4096
	counts := make([]atomic.Int32, trip)
	omp.ParallelFor(trip, func(_ *omp.Thread, i int64) {
		counts[i].Add(1)
		if i < 64 {
			for k := 0; k < 10000; k++ {
				_ = k * k
			}
		}
	}, omp.NumThreads(8), omp.Schedule(omp.Auto, 0))
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("auto: iteration %d ran %d times", i, c)
		}
	}
}

// OMP_SCHEDULE surface: the modifier prefix round-trips through
// ParseSchedule and Sched.String.
func TestParseScheduleModifierRoundTrip(t *testing.T) {
	s, err := omp.ParseSchedule("nonmonotonic:dynamic,4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != omp.Dynamic || s.Chunk != 4 || s.Mod != omp.Nonmonotonic {
		t.Fatalf("parsed %+v", s)
	}
	if got := s.String(); got != "nonmonotonic:dynamic,4" {
		t.Fatalf("String() = %q", got)
	}
	// schedule(runtime) resolving a modifier-carrying ICV must still cover.
	omp.SetSchedule(omp.Dynamic, 2)
	defer omp.SetSchedule(omp.Static, 0)
	const trip = 1000
	counts := make([]atomic.Int32, trip)
	omp.ParallelFor(trip, func(_ *omp.Thread, i int64) {
		counts[i].Add(1)
	}, omp.NumThreads(4), omp.Schedule(omp.Runtime, 0))
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("runtime: iteration %d ran %d times", i, c)
		}
	}
}

// Contradictory schedule modifiers are a caller bug and must be loud.
func TestScheduleConflictingModifiersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(Monotonic, Nonmonotonic) did not panic")
		}
	}()
	omp.ParallelFor(1, func(_ *omp.Thread, _ int64) {},
		omp.Schedule(omp.Dynamic, 1, omp.Monotonic, omp.Nonmonotonic))
}
