package omp

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelErrReturnsFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := ParallelErr(func(th *Thread) error {
		ran.Add(1)
		if th.Tid == 1 {
			return sentinel
		}
		return nil
	}, NumThreads(4))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if ran.Load() != 4 {
		t.Fatalf("body ran on %d threads, want 4", ran.Load())
	}
}

func TestParallelErrRecoversPanic(t *testing.T) {
	err := ParallelErr(func(th *Thread) error {
		if th.Tid == 2 {
			panic("kaboom")
		}
		return nil
	}, NumThreads(4))
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want recovered panic mentioning kaboom", err)
	}
}

func TestParallelErrSerialTeamRecoversPanic(t *testing.T) {
	err := ParallelErr(func(th *Thread) error {
		panic("serial kaboom")
	}, NumThreads(1))
	if err == nil || !strings.Contains(err.Error(), "serial kaboom") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestParallelErrNilOnSuccess(t *testing.T) {
	if err := ParallelErr(func(th *Thread) error { return nil }, NumThreads(4)); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

// A deadline mid-loop must tear the team down at the next chunk boundary and
// surface context.DeadlineExceeded — the bounded-latency contract of the v2
// API.
func TestWithContextDeadline(t *testing.T) {
	ctx, stop := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer stop()
	var iters atomic.Int64
	err := ParallelForErr(1<<40, func(th *Thread, i int64) error {
		iters.Add(1)
		time.Sleep(50 * time.Microsecond)
		return nil
	}, NumThreads(4), WithContext(ctx), Schedule(Dynamic, 8))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if iters.Load() == 0 {
		t.Fatal("loop never ran before the deadline")
	}
}

func TestWithContextDeadlineStaticSchedule(t *testing.T) {
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer stop()
	sink := make([]int, 4)
	err := ForEach(make([]int64, 1<<22), func(th *Thread, i int64, v *int64) {
		// Enough work per element that the whole loop cannot finish
		// before the deadline; static blocks observe the cancel flag
		// between bounded sub-chunks.
		acc := i
		for j := int64(0); j < 24; j++ {
			acc = acc*31 + j
		}
		sink[th.Tid] += int(acc & 1)
	}, NumThreads(4), WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestWithContextAlreadyCancelled(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	var iters atomic.Int64
	err := ParallelForErr(1<<20, func(th *Thread, i int64) error {
		iters.Add(1)
		return nil
	}, NumThreads(4), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestBodyErrorCancelsRemainingIterations(t *testing.T) {
	sentinel := errors.New("bad element")
	var after atomic.Int64
	err := ParallelForErr(1<<20, func(th *Thread, i int64) error {
		if i == 0 {
			return sentinel
		}
		after.Add(1)
		return nil
	}, NumThreads(4), Schedule(Dynamic, 16))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if after.Load() >= 1<<20-1 {
		t.Fatal("error did not cancel remaining iterations")
	}
}

func TestForEachTypesAndCompletion(t *testing.T) {
	type pair struct{ a, b int }
	s := make([]pair, 10000)
	if err := ForEach(s, func(th *Thread, i int64, v *pair) {
		v.a = int(i)
		v.b = 2 * int(i)
	}, NumThreads(4)); err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if s[i].a != i || s[i].b != 2*i {
			t.Fatalf("s[%d] = %+v", i, s[i])
		}
	}
}

func TestReduceInto(t *testing.T) {
	a := make([]float64, 100000)
	for i := range a {
		a[i] = float64(i)
	}
	sum := 1.5 // prior value participates once
	if err := ReduceInto(ReduceSum, &sum, int64(len(a)), func(th *Thread, i int64, acc float64) float64 {
		return acc + a[i]
	}, NumThreads(4)); err != nil {
		t.Fatal(err)
	}
	want := 1.5 + float64(len(a)-1)*float64(len(a))/2
	if sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}

	best := int64(1 << 62)
	if err := ReduceInto(ReduceMin, &best, 1000, func(th *Thread, i int64, acc int64) int64 {
		v := (i - 500) * (i - 500)
		if v < acc {
			return v
		}
		return acc
	}, NumThreads(4)); err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Fatalf("min = %d, want 0", best)
	}
}

func TestReduceIntoLeavesDestinationOnError(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	sum := 42.0
	err := ReduceInto(ReduceSum, &sum, 1<<20, func(th *Thread, i int64, acc float64) float64 {
		return acc + 1
	}, NumThreads(4), WithContext(ctx))
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if sum != 42.0 {
		t.Fatalf("sum = %v, want untouched 42", sum)
	}
}

// The generic cell must agree with a serial fold for every operator and a
// mix of types, including named and unsigned ones.
func TestGenericReductionTypedVariants(t *testing.T) {
	type watts float32
	r := NewReduction(ReduceMax, watts(1))
	Parallel(func(th *Thread) {
		local := r.Identity()
		For(th, 1000, func(i int64) {
			if w := watts(i % 777); w > local {
				local = w
			}
		})
		r.Combine(local)
	}, NumThreads(4))
	if got := r.Value(); got != 776 {
		t.Fatalf("max = %v, want 776", got)
	}

	u := NewReduction(ReduceSum, uint64(1<<63))
	Parallel(func(th *Thread) {
		local := u.Identity()
		For(th, 1000, func(i int64) { local += uint64(i) })
		u.Combine(local)
	}, NumThreads(4))
	if got := u.Value(); got != 1<<63+999*1000/2 {
		t.Fatalf("uint64 sum = %d", got)
	}
}

func TestCancelRequiresCancellation(t *testing.T) {
	SetCancellation(false)
	defer SetCancellation(false)
	var cancelled, completed atomic.Int32
	Parallel(func(th *Thread) {
		if Cancel(th, CancelParallel) {
			cancelled.Add(1)
			return
		}
		completed.Add(1)
	}, NumThreads(4))
	if cancelled.Load() != 0 || completed.Load() != 4 {
		t.Fatalf("cancel activated without cancel-var: cancelled=%d completed=%d",
			cancelled.Load(), completed.Load())
	}

	SetCancellation(true)
	cancelled.Store(0)
	completed.Store(0)
	Parallel(func(th *Thread) {
		if Cancel(th, CancelParallel) {
			cancelled.Add(1)
			return
		}
		completed.Add(1)
	}, NumThreads(4))
	if cancelled.Load() != 4 {
		t.Fatalf("cancel did not activate with cancel-var set: cancelled=%d", cancelled.Load())
	}
}

func TestCancelTaskgroupDiscardsUnstarted(t *testing.T) {
	var executed atomic.Int32
	err := ParallelErr(func(th *Thread) error {
		if th.Tid == 0 {
			Taskgroup(th, func() {
				Cancel(th, CancelTaskgroup)
				for i := 0; i < 100; i++ {
					Task(th, func(ex *Thread) { executed.Add(1) })
				}
			})
		}
		return nil
	}, NumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d tasks executed after taskgroup cancel, want 0", executed.Load())
	}
}

// Barrier after cancel must not deadlock: half the team cancels and returns,
// the other half arrives at an explicit barrier.
func TestCancelReleasesBarrier(t *testing.T) {
	done := make(chan struct{})
	go func() {
		_ = ParallelErr(func(th *Thread) error {
			if th.Tid%2 == 0 {
				Cancel(th, CancelParallel)
				return nil // branch to region end without arriving
			}
			time.Sleep(time.Millisecond)
			Barrier(th)
			return nil
		}, NumThreads(4))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled region deadlocked at a barrier")
	}
}

// Stress: cancellation racing task stealing. Every thread spawns recursive
// task trees while one thread cancels the taskgroup (or the whole region)
// mid-flight; stolen tasks observe the flags concurrently with the
// cancelling thread setting them. Run with -race in CI.
func TestStressCancellationRacesTaskSteals(t *testing.T) {
	for round := 0; round < 20; round++ {
		kind := CancelTaskgroup
		if round%2 == 1 {
			kind = CancelParallel
		}
		var executed atomic.Int64
		err := ParallelErr(func(th *Thread) error {
			Taskgroup(th, func() {
				var spawn func(ex *Thread, depth int)
				spawn = func(ex *Thread, depth int) {
					executed.Add(1)
					if depth == 0 {
						return
					}
					for i := 0; i < 3; i++ {
						Task(ex, func(inner *Thread) { spawn(inner, depth-1) })
					}
					if executed.Load() > 50 && th.Tid == 1 {
						Cancel(ex, kind)
					}
				}
				spawn(th, 6)
			})
			return nil
		}, NumThreads(4))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Context cancellation racing task stealing: the watcher goroutine flips the
// region flag from outside the team while workers steal and execute.
func TestStressContextCancelRacesTaskSteals(t *testing.T) {
	for round := 0; round < 10; round++ {
		ctx, stop := context.WithTimeout(context.Background(), time.Duration(round)*time.Millisecond)
		err := ParallelErr(func(th *Thread) error {
			Taskgroup(th, func() {
				for i := 0; i < 200; i++ {
					Task(th, func(ex *Thread) {
						time.Sleep(10 * time.Microsecond)
					})
				}
			})
			return nil
		}, NumThreads(4), WithContext(ctx))
		stop()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("round %d: err = %v", round, err)
		}
	}
}

// A panic inside a *deferred task* must also convert to an error: the task
// may execute at the region-end drain, outside the region body's own
// recovery, so the conversion happens at the task boundary (runTaskRecover).
func TestParallelErrRecoversTaskPanic(t *testing.T) {
	err := ParallelErr(func(th *Thread) error {
		if th.Tid == 0 {
			Task(th, func(ex *Thread) { panic("task kaboom") })
		}
		return nil
	}, NumThreads(4))
	if err == nil || !strings.Contains(err.Error(), "task kaboom") {
		t.Fatalf("err = %v, want recovered task panic", err)
	}
}

// Serialised regions (team of one) must still observe deadlines: the loop
// routes through the runtime's cancellable static driver instead of the
// single-call fast path.
func TestWithContextDeadlineSerialTeam(t *testing.T) {
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer stop()
	var sink atomic.Int64
	err := ParallelForErr(1<<40, func(th *Thread, i int64) error {
		acc := i
		for j := int64(0); j < 24; j++ {
			acc = acc*31 + j
		}
		sink.Add(acc & 1)
		return nil
	}, NumThreads(1), WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded on a serial team", err)
	}
}

// Cancel(CancelFor) between loops must report "not inside a loop" rather
// than poisoning the loop-cancel slot with a finished instance, and a real
// cancel inside the next loop must still activate.
func TestCancelForOutsideLoopIsNoop(t *testing.T) {
	SetCancellation(true)
	defer SetCancellation(false)
	var stray, cancelled atomic.Int32
	var ran atomic.Int64
	Parallel(func(th *Thread) {
		ForRange(th, 64, func(lo, hi int64) {}, NoWait())
		if Cancel(th, CancelFor) { // no enclosing loop: must not activate
			stray.Add(1)
		}
		For(th, 1<<20, func(i int64) {
			ran.Add(1)
			if i == 0 {
				if Cancel(th, CancelFor) {
					cancelled.Add(1)
				}
			}
		}, Schedule(Dynamic, 64))
	}, NumThreads(4))
	if stray.Load() != 0 {
		t.Fatalf("cancel for outside a loop activated on %d threads", stray.Load())
	}
	if cancelled.Load() != 1 {
		t.Fatalf("cancel for inside the next loop activated %d times, want 1", cancelled.Load())
	}
	if ran.Load() >= 1<<20 {
		t.Fatal("second loop ran to completion despite cancellation")
	}
}
