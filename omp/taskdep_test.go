package omp_test

import (
	"fmt"
	"runtime"
	"testing"

	"gomp/omp"
)

// A 2-D wavefront through the public dependence options: block (i,j)
// depends on (i-1,j) and (i,j-1), the dataflow of a Gauss–Seidel sweep.
// The result must equal the serial sweep exactly — every task reads
// neighbour values the dependences guarantee are final.
func TestTaskDependWavefront(t *testing.T) {
	const n = 12
	for _, nth := range []int{1, 2, 4, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("threads=%d", nth), func(t *testing.T) {
			grid := make([]int, n*n)
			want := make([]int, n*n)
			at := func(g []int, i, j int) int {
				if i < 0 || j < 0 {
					return 1
				}
				return g[i*n+j]
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want[i*n+j] = at(want, i-1, j) + at(want, i, j-1)
				}
			}
			omp.Parallel(func(th *omp.Thread) {
				omp.Single(th, func() {
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							i, j := i, j
							opts := []omp.Option{omp.DependOut("cell", &grid[i*n+j])}
							if i > 0 {
								opts = append(opts, omp.DependIn("up", &grid[(i-1)*n+j]))
							}
							if j > 0 {
								opts = append(opts, omp.DependIn("left", &grid[i*n+j-1]))
							}
							omp.Task(th, func(*omp.Thread) {
								grid[i*n+j] = at(grid, i-1, j) + at(grid, i, j-1)
							}, opts...)
						}
					}
				})
			}, omp.NumThreads(nth))
			for k := range grid {
				if grid[k] != want[k] {
					t.Fatalf("cell %d = %d, want %d", k, grid[k], want[k])
				}
			}
		})
	}
}

// The public options compose: priority, mergeable and taskyield are
// accepted alongside dependences, outside and inside teams.
func TestTaskDependOptionSmoke(t *testing.T) {
	var x, y int
	// Outside any team: inline execution in program order.
	omp.Task(nil, func(*omp.Thread) { x = 1 },
		omp.DependOut("x", &x), omp.Priority(3), omp.Mergeable())
	omp.Task(nil, func(*omp.Thread) { y = x + 1 }, omp.DependIn("x", &x))
	omp.Taskyield(nil)
	if x != 1 || y != 2 {
		t.Fatalf("inline depend tasks: x=%d y=%d", x, y)
	}

	order := make([]int, 0, 3)
	omp.Parallel(func(th *omp.Thread) {
		omp.Single(th, func() {
			var cell int
			for i := 0; i < 3; i++ {
				i := i
				omp.Task(th, func(*omp.Thread) { order = append(order, i) },
					omp.DependInOut("cell", &cell), omp.Priority(i+1), omp.Mergeable())
			}
			omp.Taskwait(th)
			omp.Taskyield(th)
		})
	}, omp.NumThreads(4))
	// inout chain: creation order despite ascending priorities —
	// dependences, not priorities, bind the order.
	for i, v := range order {
		if v != i {
			t.Fatalf("chain order = %v", order)
		}
	}
}

// An if(false) task with dependences executes undeferred but still after
// its predecessors, through the public surface.
func TestTaskDependUndeferred(t *testing.T) {
	var cell, got int
	omp.Parallel(func(th *omp.Thread) {
		omp.Single(th, func() {
			omp.Task(th, func(*omp.Thread) { cell = 41 }, omp.DependOut("cell", &cell))
			omp.Task(th, func(*omp.Thread) { got = cell + 1 },
				omp.DependIn("cell", &cell), omp.If(false))
			if got != 42 {
				t.Errorf("undeferred dependent task saw %d", got)
			}
		})
	}, omp.NumThreads(4))
}
