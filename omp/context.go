package omp

import (
	"context"

	"gomp/internal/kmp"
)

// The v2 entry points: error-aware, context-aware parallel regions and the
// OpenMP cancellation constructs. The paper's constructs (Parallel, For, …)
// mirror directives exactly and therefore can neither fail nor be
// interrupted; serving traffic where every request carries a deadline needs
// both, so these wrappers bind a region to a context.Context and surface
// panics and errors instead of crashing the process. The runtime half lives
// in internal/kmp/cancel.go.

// CancelKind selects the construct a Cancel or CancellationPoint binds to:
// the argument of the cancel directive.
type CancelKind = kmp.CancelKind

const (
	// CancelParallel cancels the innermost enclosing parallel region.
	CancelParallel = kmp.CancelParallel
	// CancelFor cancels the innermost enclosing worksharing loop.
	CancelFor = kmp.CancelLoop
	// CancelTaskgroup cancels the innermost enclosing taskgroup.
	CancelTaskgroup = kmp.CancelTaskgroup
)

// WithContext binds ctx to the parallel region: when ctx is cancelled or its
// deadline passes, region cancellation activates and every team thread stops
// at its next cancellation point — the next loop chunk, barrier, task
// scheduling point, or explicit CancellationPoint. Only the error-returning
// entry points (ParallelErr, ParallelForErr, ForEach, ReduceInto) can report
// the resulting ctx.Err(); on the void constructs the region simply returns
// early.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// ParallelErr is Parallel for code that can fail: body runs once on every
// team thread, and the call returns the first non-nil error any thread
// returned — which also cancels the rest of the team — or the context's
// error when a WithContext deadline tore the region down. A panic on any
// team thread is recovered and returned as an error instead of crashing the
// process. The team is always cancellable, regardless of OMP_CANCELLATION.
func ParallelErr(body func(t *Thread) error, opts ...Option) error {
	if len(opts) == 0 {
		return kmp.ForkCallErr(kmp.Ident{Region: "parallel"}, 0, nil, body)
	}
	c := getConfig(opts)
	n := c.numThreads
	if c.hasIf && !c.ifClause {
		n = 1
	}
	if c.loc.Region == "" {
		c.loc.Region = "parallel"
	}
	loc, ctx := c.loc, c.ctx
	putConfig(c)
	return kmp.ForkCallErr(loc, n, ctx, body)
}

// ParallelForErr fuses ParallelErr and For: body receives each iteration of
// [0, trip) on some team thread and may return an error, which cancels the
// team — remaining chunks are not dispatched — and becomes the call's
// result. With WithContext, a deadline mid-loop stops iteration at the next
// chunk boundary and returns the context's error.
func ParallelForErr(trip int64, body func(t *Thread, i int64) error, opts ...Option) error {
	return ParallelErr(func(t *Thread) error {
		var first error
		// No per-iteration cancellation probe: the loop drivers already
		// observe the region flag at every chunk boundary (DispatchNext,
		// forStaticCancel), which is the granularity this construct
		// promises; an error ends the erring thread's own chunk via the
		// return below.
		ForRange(t, trip, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				if err := body(t, i); err != nil {
					first = err
					t.Cancel(kmp.CancelParallel)
					return
				}
			}
		}, opts...)
		return first
	}, opts...)
}

// Cancel is the cancel directive: it requests cancellation of the innermost
// enclosing construct of the given kind and reports whether the encountering
// thread must branch to that construct's end (generated code returns from
// the outlined block when Cancel reports true). Cancellation must be
// enabled — OMP_CANCELLATION/SetCancellation, or a region launched through
// ParallelErr/WithContext — otherwise Cancel is a no-op returning false, as
// the standard specifies.
func Cancel(t *Thread, kind CancelKind) bool { return t.Cancel(kind) }

// CancellationPoint is the cancellation point directive: it reports whether
// cancellation of the given kind is active for the innermost enclosing
// construct, in which case the encountering thread must branch to that
// construct's end.
func CancellationPoint(t *Thread, kind CancelKind) bool { return t.CancellationPoint(kind) }
