// Package omp is the user-facing OpenMP API of this reproduction — the
// analog of the `omp` namespace the paper grafts onto the Zig standard
// library (Section III-C), promoted in v2 from internal/omp to an importable
// top-level package, with the omp_ prefix dropped exactly as the paper drops
// it: omp_get_thread_num becomes omp.GetThreadNum.
//
// Three layers coexist:
//
//   - The standard OpenMP runtime-library routines (GetThreadNum,
//     GetNumThreads, SetNumThreads, GetWtime, locks, schedule and
//     max-active-levels ICVs, cancellation state, …), callable from
//     anywhere. Inside a parallel region they resolve the calling
//     goroutine's thread via the registry; generated code uses the
//     explicit-context variants on *Thread, which are free of that lookup.
//
//   - The structured constructs the preprocessor lowers pragmas onto:
//     Parallel, For, ParallelFor, Single, Masked, Sections, Critical,
//     Barrier, the explicit-tasking constructs (Task, Taskwait, Taskgroup,
//     Taskloop), the cancellation pair (Cancel, CancellationPoint) and the
//     reduction cells. These correspond to the paper's `.omp.internal`
//     namespace of generic wrappers over the __kmpc_* families — not
//     intended to be pretty for humans, but usable directly.
//
//   - The v2 library constructs, which only an importable package (not a
//     pragma) can express: error- and context-aware region launch
//     (ParallelErr, ParallelForErr, WithContext) that recovers worker
//     panics and tears teams down on deadline, and the type-safe generic
//     collection constructs (ForEach over any slice type, ReduceInto over
//     any Numeric type, the generic Reduction cell).
//
// # Loop scheduling
//
// Worksharing loops (For, ForRange, ParallelFor) take a Schedule option
// mirroring the schedule clause. Two execution engines back it:
//
//   - Stealing (nonmonotonic). Each team thread is seeded with its
//     contiguous static block of the iteration space as a splittable range.
//     It pops schedule-sized chunks from the front of its own range — the
//     hot path touches only thread-local state — and when dry steals the
//     upper half of a teammate's range. Dynamic, guided, trapezoidal and
//     auto schedules run here by default, as OpenMP 5.0's
//     nonmonotonic-by-default rule licenses.
//
//   - Shared counter (monotonic). The classic __kmpc_dispatch_next
//     protocol: one team-wide atomic iteration counter hands out chunks in
//     increasing order. Selected by the Monotonic modifier —
//     Schedule(Dynamic, 4, Monotonic) — and forced for loops carrying the
//     ordered clause, whose ticket protocol needs in-order chunks, and for
//     iteration spaces beyond 2³¹.
//
// Chunk sizing is a per-schedule policy over the remaining iterations:
// dynamic issues fixed chunks, guided a shrinking fraction of the
// remainder, trapezoidal a linear taper. schedule(auto) — formerly an alias
// of static — now means static seeding plus stealing: static's locality
// when the load is balanced, dynamic's rebalancing when it is not. Code
// that relied on auto's exact static block boundaries should say
// Schedule(Static, 0) explicitly.
//
// The OMP_SCHEDULE environment variable (and ParseSchedule) accepts the
// modifier prefix: "nonmonotonic:dynamic,4", "monotonic:guided".
//
// The ordered construct pairs with the ordered clause:
//
//	omp.ParallelFor(n, func(t *omp.Thread, i int64) {
//		v := compute(i)
//		omp.Ordered(t, func() { emit(v) }) // runs in iteration order
//	}, omp.OrderedClause(), omp.Schedule(omp.Dynamic, 4))
//
// Steal points remain cancellation points: a cancelled loop stops handing
// out chunks on both engines, and threads parked in an ordered ticket chain
// are released. Steals emit TraceLoopSteal events, observable through
// internal/trace's profiler (a "steals" column in the flat profile).
//
// # Task dependences
//
// Tasks express dataflow DAGs through the depend clause — OpenMP 4.0's
// mechanism for wavefronts, blocked factorisations, and every workload
// whose ordering is a partial order taskwait/taskgroup can only
// over-serialise. The clause surface:
//
//	//omp task depend(in: a, b) depend(out: c) priority(2) mergeable
//	//omp taskyield
//
// and the equivalent options on omp.Task: DependIn, DependOut, DependInOut
// (one per variable; the variable's address is the dependence identity, so
// sibling tasks naming the same storage are ordered), Priority, Mergeable,
// plus the standalone Taskyield. Ordering rules are the standard's: a task
// with in on x runs after the last preceding sibling with out/inout on x;
// a task with out/inout on x additionally runs after every in task
// admitted since. Dependences order sibling tasks only — tasks of the same
// generating task region.
//
// The runtime (internal/kmp/taskdep.go) keeps a per-region hash table of
// last-writer/reader-set per dependence address. A dependent task holds an
// atomic count of unresolved predecessors and is withheld from the
// work-stealing deques until it reaches zero; completing a task releases
// its successors from whichever thread finished, and tasks with
// Priority(n) re-enter through a team-wide priority queue that every
// dequeue consults first. if(false) tasks with dependences wait at the
// spawn point (executing other ready tasks) as the standard requires, and
// cancelled tasks still release their successors, so DAGs compose with
// taskwait, taskgroup, cancellation, and WithContext teardown.
//
// The canonical wavefront — block (i,j) after blocks (i-1,j) and (i,j-1):
//
//	omp.Parallel(func(t *omp.Thread) {
//		omp.Single(t, func() {
//			for i := 0; i < nb; i++ {
//				for j := 0; j < nb; j++ {
//					i, j := i, j
//					opts := []omp.Option{omp.DependOut("self", &tok[i*nb+j])}
//					if i > 0 {
//						opts = append(opts, omp.DependIn("north", &tok[(i-1)*nb+j]))
//					}
//					if j > 0 {
//						opts = append(opts, omp.DependIn("west", &tok[i*nb+j-1]))
//					}
//					omp.Task(t, func(*omp.Thread) { tile(i, j) }, opts...)
//				}
//			}
//			omp.Taskwait(t)
//		})
//	})
//
// Tiles release the moment their two predecessors finish — no per-diagonal
// barrier, no idle threads at the sweep's narrow ends. See
// examples/wavefront for the full program and internal/bench's blocked LU
// (BenchmarkBlockedLU) for the dependence-DAG-vs-taskwait comparison.
//
// # Loop transformations
//
// The preprocessor's tile and unroll directives (OpenMP 5.1) never reach
// this package at run time: they restructure the annotated loops into
// plain Go before outlining, and only the worksharing directive stacked
// above them lowers to runtime calls. What this package sees is the
// generated shape — for
//
//	//omp parallel for collapse(2)
//	//omp tile sizes(64,64)
//	for i := 0; i < n; i++ {
//		for j := 0; j < m; j++ { … }
//
// the ForRange iteration space is the 64×64 tile grid (one logical
// iteration per tile, TripCount over the grid loops' origins), and each
// chunk body runs whole tiles through the fringe-guarded point loops. A
// tile therefore behaves like a natural chunk: schedule clauses granulate
// in tiles, steals migrate tiles, and cancellation checks run between
// tiles, never inside one.
//
// Ordering rules for stacked directives, the remainder-loop semantics of
// partial unrolling, and the bare-unroll heuristics are documented in the
// repository root's doc.go ("Loop transformations") — the short form: the
// directive nearest the loop applies first, tile generates a nest a
// collapse can consume (at most its depth), unroll consumes the loop
// structure entirely and leaves a trip%factor scalar remainder loop.
//
// # Serving: warm regions and the fork fast path
//
// Parallel is cheap enough to sit on a request path. After the first
// region from a given goroutine, the runtime's team affinity hands the
// same warm team back on every subsequent fork: workers are already
// spawned (parked on an atomic generation word between regions), the
// barrier is already sized, and the whole fork/join round trip allocates
// nothing — including the common options (NumThreads up to 64, NoWait,
// OrderedClause, If), which are cached singletons, and worksharing loops
// inside the region. TestParallelWarmZeroAlloc pins the property;
// BenchmarkServingRegions measures many concurrent goroutines each
// running private regions, the serving shape.
//
// Two knobs matter for servers. OMP_WAIT_POLICY chooses how long a
// worker spins before parking between regions — passive (default) parks
// quickly and coexists with oversubscription; active trades CPU for
// latency. TrimTeams releases every idle cached team (workers exit,
// structures become garbage) for processes that have gone quiet; the
// next Parallel simply rebuilds from cold. Cancellable regions
// (SetCancellation(true)) and context-bound regions (WithContext) stay on
// the fast path; only the context watcher goroutine is an extra cost, paid
// per region, and only when a context is actually supplied.
//
// # Migrating from the v1 internal API
//
// The old import path gomp/internal/omp remains a forwarding shim, so v1
// code compiles unchanged. New code should import gomp/omp and prefer the
// v2 constructs where they fit:
//
//	v1 construct (gomp/internal/omp)        v2 construct (gomp/omp)
//	--------------------------------        -----------------------------------------
//	omp.Parallel(body)                      omp.ParallelErr(body) error
//	omp.ParallelFor(n, body)                omp.ParallelForErr(n, body) error
//	loop over a slice by index              omp.ForEach(s, body) error
//	omp.NewInt64Reduction(op, v)            omp.NewReduction(op, v) (generic, atomic)
//	omp.NewFloat64Reduction(op, v)          omp.NewReduction(op, v)
//	reduction region boilerplate            omp.ReduceInto(op, &v, n, body) error
//	omp.SetNested(true)                     omp.SetMaxActiveLevels(n)
//	omp.GetNested()                         omp.GetMaxActiveLevels() > 1
//	unbounded region                        omp.WithContext(ctx) option + *Err entry
//	(no equivalent)                         omp.Cancel / omp.CancellationPoint
//	(no equivalent)                         omp.DependIn/DependOut/DependInOut,
//	                                        omp.Priority, omp.Taskyield
//
// A minimal parallel dot product with a deadline:
//
//	ctx, stop := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer stop()
//	dot := 0.0
//	err := omp.ReduceInto(omp.ReduceSum, &dot, int64(len(a)),
//		func(t *omp.Thread, i int64, acc float64) float64 {
//			return acc + a[i]*b[i]
//		}, omp.WithContext(ctx))
//
// err is context.DeadlineExceeded when the deadline tore the team down, and
// dot is then left untouched.
//
// # Observability
//
// Profile enables the process-wide profiler — an OMPT-style collector
// on the runtime's per-thread lock-free event rings — and returns the
// stop function that prints a gprof-style flat profile of every
// parallel region, worksharing loop and task construct, named by the
// user's file:line:
//
//	defer omp.Profile()()
//
// `gompcc -profile` injects exactly that call into main, plus
// `defer omp.ZoneAt(file, line, fn)()` into every pragma-containing
// function, so an annotated program self-reports without source
// changes. Two environment switches extend the report:
// GOMP_TRACE_JSON=<path> exports the full event timeline as Chrome
// trace-event JSON — load it at ui.perfetto.dev or chrome://tracing to
// see one track per runtime thread with work steals drawn as flow
// arrows — and GOMP_METRICS=1 appends the runtime metrics snapshot
// (fork / barrier / steal / task counters and wait-time histograms).
//
// When no profiler is active every runtime instrumentation site costs
// one atomic pointer load and ZoneAt is a pointer-load no-op; enabled
// collection appends fixed-size events to per-thread ring buffers
// drained at region joins (measured within noise, budget <10%, on NPB
// CG class S).
//
// # Live monitoring
//
// ServeDebug mounts the runtime's /debug/gomp endpoint suite on a
// background HTTP server, so a long-running serving workload is
// scrapeable and inspectable without stopping it:
//
//	dbg, err := omp.ServeDebug("localhost:6060")
//	defer dbg.Close()
//
// endpoints: /debug/gomp/status (live teams and per-worker states,
// JSON), /debug/gomp/health (hang/deadlock diagnosis, JSON),
// /debug/gomp/flight (always-on event history), /debug/gomp/metrics
// (OpenMetrics / Prometheus text format), /debug/gomp/profile?seconds=N
// and /debug/gomp/timeline?seconds=N (on-demand capture windows),
// /debug/gomp/regions (per-region load imbalance and straggler blame),
// /debug/pprof/ (standard Go pprof), /debug/vars (expvar). Setting
// GOMP_DEBUG_ADDR=<addr> on a `gompcc -profile` build starts the same
// server automatically for the program's lifetime; ":0" picks an
// ephemeral port printed to stderr.
//
// A Prometheus scrape against /debug/gomp/metrics needs nothing
// special:
//
//	scrape_configs:
//	  - job_name: gomp
//	    metrics_path: /debug/gomp/metrics
//	    static_configs:
//	      - targets: ["localhost:6060"]
//
// Status sampling reads only per-thread atomic state words maintained
// on paths the runtime already executes, so scraping neither stops the
// world nor disturbs the allocation-free fork fast path.
//
// # Troubleshooting hangs
//
// A parallel program that stops making progress is the one situation a
// profiler you must enable in advance cannot help with, so the runtime
// keeps three always-on diagnostics:
//
// The flight recorder. Every pooled runtime thread appends its trace
// events (fork, barrier, loop steal, task run, dependence stall and
// release) to a private fixed-size lock-free ring — 256 records per
// thread by default, GOMP_FLIGHT=<n> resizes, GOMP_FLIGHT=off disables.
// It runs with no profiler installed and is cheap enough that the
// zero-allocation fork fast path stays zero-allocation. Snapshot it
// with DumpDiagnostics(w), scrape /debug/gomp/flight, or — after
// HandleSIGQUIT (or GOMP_SIGQUIT=1) — interrogate a wedged process the
// classic way:
//
//	kill -QUIT <pid>    # full diagnostic dump to stderr
//
// The watchdog. StartWatchdog(threshold) (GOMP_WATCHDOG=30s from the
// environment; 0 selects the 10s default) samples the per-worker state
// words and the task-dependence tables. A worker sitting in one barrier
// or steal sweep, unmoved, past the threshold trips it; a dependence
// cycle among withheld tasks — two sibling tasks whose depend clauses
// wait on each other, a proof of deadlock — trips it immediately. The
// trip handler (yours via StartWatchdogConfig, or the default stderr
// report) receives a HangReport naming each stuck worker's region and
// each cycle's pragma locations:
//
//	hang report (threshold 10s):
//	  dependence cycle (deadlock): lu.go:41 inout:a -> lu.go:47 inout:b -> lu.go:41 inout:a
//
// The same diagnosis is served continuously at /debug/gomp/health
// (?strict=1 turns unhealthy into HTTP 503, for liveness probes),
// exported as the gomp_health gauge and gomp_watchdog_trips_total
// counter, and appended as a WARNING footer to any profiler report
// produced while unhealthy. ReadHealth returns it in-process.
//
// pprof attribution. SetProfileLabels(true) (GOMP_PPROF_LABELS=1; also
// enabled for the duration of Profile) labels team goroutines with
// omp_region — the enclosing pragma's file:line — and omp_gtid, so
// `go tool pprof` CPU and goroutine profiles break down by parallel
// region. With ServeDebug mounted, /debug/pprof/goroutine?debug=1
// shows at a glance which region every parked worker is in.
//
// The usual diagnosis workflow: arm GOMP_WATCHDOG in production; on a
// trip, read the hang report for who is stuck where (a dependence
// cycle is definitive — fix the depend clauses it names), then the
// flight-recorder tail for what the runtime did in the seconds before
// it wedged; /debug/pprof/goroutine tells you what the rest of the
// process was doing. `go run ./examples/diagnose` walks the complete
// loop against an injected deadlock.
package omp
