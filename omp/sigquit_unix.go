//go:build unix

package omp

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// HandleSIGQUIT installs a SIGQUIT handler that writes the full
// diagnostic dump (DumpDiagnostics) to stderr — the classic kill -QUIT
// black-box interrogation of a wedged process. The returned stop
// function uninstalls it.
//
// Caveat: registering any handler for SIGQUIT replaces Go's default
// behaviour of dumping all goroutine stacks and exiting. The handler
// here dumps gomp diagnostics and keeps the process running; send the
// signal twice after calling stop (or use /debug/pprof/goroutine) if
// the goroutine stacks are what you need. GOMP_SIGQUIT=1 installs the
// handler from the environment.
func HandleSIGQUIT() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				DumpDiagnostics(os.Stderr)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
