//go:build !race

package omp

const raceEnabled = false
