package omp

import (
	"sync/atomic"
	"testing"

	"gomp/internal/kmp"
)

func TestParallelTeamSize(t *testing.T) {
	var n atomic.Int32
	Parallel(func(th *Thread) {
		if th.Tid == 0 {
			n.Store(int32(th.NumThreads()))
		}
	}, NumThreads(3))
	if n.Load() != 3 {
		t.Fatalf("team size %d, want 3", n.Load())
	}
}

func TestParallelIfFalseSerialises(t *testing.T) {
	var n atomic.Int32
	var runs atomic.Int32
	Parallel(func(th *Thread) {
		runs.Add(1)
		n.Store(int32(th.NumThreads()))
	}, NumThreads(8), If(false))
	if n.Load() != 1 || runs.Load() != 1 {
		t.Fatalf("if(false) region: size=%d runs=%d, want 1/1", n.Load(), runs.Load())
	}
}

func TestParallelIfTrueForks(t *testing.T) {
	var runs atomic.Int32
	Parallel(func(th *Thread) { runs.Add(1) }, NumThreads(4), If(true))
	if runs.Load() != 4 {
		t.Fatalf("if(true) region ran %d bodies, want 4", runs.Load())
	}
}

func TestForCoversIterationSpace(t *testing.T) {
	const trip = 1000
	counts := make([]int32, trip)
	Parallel(func(th *Thread) {
		For(th, trip, func(i int64) {
			atomic.AddInt32(&counts[i], 1)
		})
	}, NumThreads(4))
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestForSchedules(t *testing.T) {
	for _, opt := range []Option{
		Schedule(Static, 0),
		Schedule(Static, 1),
		Schedule(Static, 7),
		Schedule(Dynamic, 0),
		Schedule(Dynamic, 5),
		Schedule(Guided, 2),
		Schedule(Trapezoidal, 1),
		Schedule(Auto, 0),
	} {
		const trip = 500
		var sum atomic.Int64
		Parallel(func(th *Thread) {
			For(th, trip, func(i int64) { sum.Add(i) }, opt)
		}, NumThreads(4))
		if want := int64(trip * (trip - 1) / 2); sum.Load() != want {
			t.Fatalf("schedule variant covered sum %d, want %d", sum.Load(), want)
		}
	}
}

func TestForRuntimeScheduleUsesICV(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	SetSchedule(Dynamic, 3)
	const trip = 200
	var sum atomic.Int64
	Parallel(func(th *Thread) {
		For(th, trip, func(i int64) { sum.Add(1) }, Schedule(Runtime, 0))
	}, NumThreads(4))
	if sum.Load() != trip {
		t.Fatalf("runtime schedule covered %d, want %d", sum.Load(), trip)
	}
}

// The implicit barrier after For: without NoWait, no thread may proceed past
// the loop until all iterations are done.
func TestForImplicitBarrier(t *testing.T) {
	const trip = 64
	var done atomic.Int32
	var violation atomic.Bool
	Parallel(func(th *Thread) {
		For(th, trip, func(i int64) { done.Add(1) })
		if done.Load() != trip {
			violation.Store(true)
		}
	}, NumThreads(4))
	if violation.Load() {
		t.Fatal("thread passed worksharing loop before all iterations completed")
	}
}

func TestForNoWaitSkipsBarrier(t *testing.T) {
	// Can't assert absence of waiting directly; assert the loop still
	// covers everything and an explicit barrier afterwards synchronises.
	const trip = 100
	var sum atomic.Int64
	Parallel(func(th *Thread) {
		For(th, trip, func(i int64) { sum.Add(1) }, NoWait())
		Barrier(th)
		if th.Tid == 0 && sum.Load() != trip {
			t.Errorf("nowait loop covered %d, want %d", sum.Load(), trip)
		}
	}, NumThreads(4))
}

func TestParallelFor(t *testing.T) {
	const trip = 777
	counts := make([]int32, trip)
	ParallelFor(trip, func(th *Thread, i int64) {
		atomic.AddInt32(&counts[i], 1)
	}, NumThreads(4), Schedule(Dynamic, 10))
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}

	// Under schedule(static) the distribution is deterministic: every
	// thread of the team must touch its own block.
	tids := make(map[int]bool)
	var mu Lock
	ParallelFor(trip, func(th *Thread, i int64) {
		mu.LockAcquire()
		tids[th.Tid] = true
		mu.Unlock()
	}, NumThreads(4), Schedule(Static, 0))
	if len(tids) != 4 {
		t.Fatalf("static distribution reached tids %v, want all 4", tids)
	}
}

func TestParallelForRange(t *testing.T) {
	const trip = 1024
	var sum atomic.Int64
	ParallelForRange(trip, func(th *Thread, lo, hi int64) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			local += i
		}
		sum.Add(local)
	}, NumThreads(4))
	if want := int64(trip * (trip - 1) / 2); sum.Load() != want {
		t.Fatalf("sum %d, want %d", sum.Load(), want)
	}
}

func TestSingleRunsOnce(t *testing.T) {
	var runs atomic.Int32
	Parallel(func(th *Thread) {
		Single(th, func() { runs.Add(1) })
		Single(th, func() { runs.Add(1) })
	}, NumThreads(5))
	if runs.Load() != 2 {
		t.Fatalf("two single constructs ran %d times, want 2", runs.Load())
	}
}

func TestMaskedRunsOnMaster(t *testing.T) {
	var tid atomic.Int32
	tid.Store(-1)
	var runs atomic.Int32
	Parallel(func(th *Thread) {
		Masked(th, func() {
			runs.Add(1)
			tid.Store(int32(th.Tid))
		})
	}, NumThreads(4))
	if runs.Load() != 1 || tid.Load() != 0 {
		t.Fatalf("masked: runs=%d tid=%d, want 1 on tid 0", runs.Load(), tid.Load())
	}
}

func TestSectionsRunAll(t *testing.T) {
	var a, b, c atomic.Int32
	Parallel(func(th *Thread) {
		Sections(th, []func(){
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		})
	}, NumThreads(2))
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("sections ran %d/%d/%d times, want 1 each", a.Load(), b.Load(), c.Load())
	}
}

func TestCriticalProtects(t *testing.T) {
	counter := 0
	Parallel(func(th *Thread) {
		for i := 0; i < 100; i++ {
			Critical("cnt", func() { counter++ })
		}
	}, NumThreads(8))
	if counter != 800 {
		t.Fatalf("critical counter = %d, want 800", counter)
	}
}

func TestAPIOutsideParallel(t *testing.T) {
	if GetThreadNum() != 0 {
		t.Errorf("GetThreadNum outside region = %d", GetThreadNum())
	}
	if GetNumThreads() != 1 {
		t.Errorf("GetNumThreads outside region = %d", GetNumThreads())
	}
	if InParallel() {
		t.Error("InParallel outside region = true")
	}
	if GetLevel() != 0 {
		t.Errorf("GetLevel outside region = %d", GetLevel())
	}
	if GetNumProcs() < 1 {
		t.Error("GetNumProcs < 1")
	}
}

func TestAPIInsideParallel(t *testing.T) {
	var ok atomic.Bool
	ok.Store(true)
	Parallel(func(th *Thread) {
		if GetThreadNum() != th.Tid {
			ok.Store(false)
		}
		if GetNumThreads() != 4 {
			ok.Store(false)
		}
		if !InParallel() || GetLevel() != 1 {
			ok.Store(false)
		}
	}, NumThreads(4))
	if !ok.Load() {
		t.Fatal("implicit API disagreed with explicit thread context")
	}
}

func TestSetGetNumThreads(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	SetNumThreads(5)
	if GetMaxThreads() != 5 {
		t.Fatalf("GetMaxThreads = %d, want 5", GetMaxThreads())
	}
	SetNumThreads(0) // undefined per spec; must be ignored
	if GetMaxThreads() != 5 {
		t.Fatalf("SetNumThreads(0) changed the ICV")
	}
	var n atomic.Int32
	Parallel(func(th *Thread) { n.Store(int32(th.NumThreads())) })
	if n.Load() != 5 {
		t.Fatalf("region size %d, want ICV 5", n.Load())
	}
}

func TestDynamicNestedICVs(t *testing.T) {
	kmp.ResetICV()
	defer kmp.ResetICV()
	SetDynamic(true)
	if !GetDynamic() {
		t.Fatal("GetDynamic = false after SetDynamic(true)")
	}
	SetNested(true)
	if !GetNested() {
		t.Fatal("GetNested = false after SetNested(true)")
	}
	SetNested(false)
}

func TestGetWtimeMonotone(t *testing.T) {
	a := GetWtime()
	b := GetWtime()
	if b < a {
		t.Fatalf("GetWtime went backwards: %g then %g", a, b)
	}
	if GetWtick() <= 0 {
		t.Fatal("GetWtick <= 0")
	}
}
