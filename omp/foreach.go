package omp

// Type-safe collection-level constructs: the v2 surface a Go program reaches
// for first, built on the directive-shaped primitives. Where Parallel/For
// mirror pragmas one-to-one (and so take raw trip counts and untyped
// closures), ForEach and ReduceInto carry the types through generics, return
// errors, and honour WithContext — the "importable library" half of the
// paper's API that pragma lowering alone cannot express.

// ForEach workshares the elements of s across a team: body receives each
// index and a pointer to its element on the executing thread. The schedule,
// team size, and context bindings come from the usual options. It returns
// the first error a thread's panic produced or the context's error when a
// WithContext deadline cancelled the region mid-loop; remaining chunks are
// then not dispatched.
func ForEach[S ~[]E, E any](s S, body func(t *Thread, i int64, v *E), opts ...Option) error {
	return ParallelErr(func(t *Thread) error {
		ForRange(t, int64(len(s)), func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				body(t, i, &s[i])
			}
		}, opts...)
		return nil
	}, opts...)
}

// ReduceInto runs body over [0, trip) as a parallel reduction with operator
// op: each thread folds its share into a private accumulator seeded with the
// operator's identity, partials combine atomically through the generic
// Reduction cell, and the result — including *into's prior value, which
// participates once as the standard requires — is written back to *into.
// body receives the running private accumulator and returns its new value.
//
// On error (a panicking thread, or a WithContext deadline) *into is left
// untouched and the error is returned, so a caller can retry or fall back to
// a serial loop without unpicking a half-combined result.
func ReduceInto[T Numeric](op ReduceOp, into *T, trip int64, body func(t *Thread, i int64, acc T) T, opts ...Option) error {
	cell := NewReduction(op, *into)
	err := ParallelErr(func(t *Thread) error {
		acc := cell.Identity()
		ForRange(t, trip, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				acc = body(t, i, acc)
			}
		}, opts...)
		cell.Combine(acc)
		return nil
	}, opts...)
	if err != nil {
		return err
	}
	*into = cell.Value()
	return nil
}
