//go:build race

package omp

// raceEnabled mirrors internal/kmp's constant for test use: alloc-count
// assertions skip under the race detector, whose instrumentation allocates
// and whose sync.Pool deliberately drops items at random.
const raceEnabled = true
