package gomp

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section V), plus the ablations listed in DESIGN.md.
//
//	Table I  / Fig. 3 — CG runtime / speedup vs threads
//	Table II / Fig. 4 — EP runtime / speedup vs threads
//	Table III/ Fig. 5 — IS runtime / speedup vs threads
//
// The problem class defaults to S so the full suite is CI-sized; set
// NPB_CLASS=W (or A…) to scale up, and use cmd/npbsuite for the paper's
// full 5-run mean protocol. Thread ladders are capped at the host's
// processor count; the paper's 128-thread points had 128 physical cores
// (see EXPERIMENTS.md).

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"gomp/internal/atomicx"
	"gomp/internal/bench"
	"gomp/internal/core"
	"gomp/internal/driver"
	"gomp/internal/kmp"
	"gomp/internal/npb"
	"gomp/internal/trace"
	"gomp/omp"
)

func benchClass() npb.Class {
	if s := os.Getenv("NPB_CLASS"); s != "" {
		if c, err := npb.ParseClass(s); err == nil {
			return c
		}
	}
	return npb.ClassS
}

func benchThreads() []int {
	max := runtime.NumCPU()
	var out []int
	for _, t := range []int{1, 2, 4, 8} {
		if t <= max {
			out = append(out, t)
		}
	}
	return out
}

// benchTable measures runtime per (impl, threads) cell — the shape of the
// paper's Tables I–III.
func benchTable(b *testing.B, kernel string) {
	class := benchClass()
	for _, impl := range []string{"omp", "goroutines"} {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := bench.Run(kernel, impl, class, threads)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Verified {
						b.Fatalf("%s/%s threads=%d failed verification", kernel, impl, threads)
					}
					b.ReportMetric(res.Seconds, "kernel-s/op")
					b.ReportMetric(res.MopsTotal, "Mop/s")
				}
			})
		}
	}
}

// benchFigure measures speedup versus the flavour's own single-thread
// kernel time — how the paper's Figures 3–5 are normalised.
func benchFigure(b *testing.B, kernel string) {
	class := benchClass()
	base := map[string]float64{}
	for _, impl := range []string{"omp", "goroutines"} {
		res, err := bench.Run(kernel, impl, class, 1)
		if err != nil {
			b.Fatal(err)
		}
		base[impl] = res.Seconds
	}
	for _, impl := range []string{"omp", "goroutines"} {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", impl, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := bench.Run(kernel, impl, class, threads)
					if err != nil {
						b.Fatal(err)
					}
					if res.Seconds > 0 {
						b.ReportMetric(base[impl]/res.Seconds, "speedup")
					}
				}
			})
		}
	}
}

// BenchmarkTable1CG regenerates Table I: CG runtime when strong scaling.
func BenchmarkTable1CG(b *testing.B) { benchTable(b, "cg") }

// BenchmarkFig3CG regenerates Figure 3: CG speedup against thread count.
func BenchmarkFig3CG(b *testing.B) { benchFigure(b, "cg") }

// BenchmarkTable1CGTraced re-runs Table I's CG omp cells with the
// OMPT-style collector installed (flat-profile aggregation, no retained
// timeline) — the enabled-overhead guard for the observability layer.
// Compare kernel-s/op against BenchmarkTable1CG's matching omp cells;
// the documented budget is <10% (measured ~1–3% on class S, see
// doc.go's Observability chapter). Disabled-tracing cost is covered by
// BenchmarkTable1CG itself: every event site degrades to one atomic
// pointer load when no collector is installed.
func BenchmarkTable1CGTraced(b *testing.B) {
	p := trace.New()
	p.Start()
	defer p.Stop()
	class := benchClass()
	for _, threads := range benchThreads() {
		b.Run(fmt.Sprintf("omp/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run("cg", "omp", class, threads)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Verified {
					b.Fatalf("cg/omp threads=%d failed verification under tracing", threads)
				}
				b.ReportMetric(res.Seconds, "kernel-s/op")
			}
		})
	}
	b.StopTimer()
	// Serialised (team-of-one) regions emit no fork events, so on a
	// single-CPU host — where benchThreads() is just {1} — zero forks is
	// the expected outcome, not a broken collector.
	if p.Metrics().Forks.Value() == 0 && len(benchThreads()) > 1 {
		b.Fatal("collector installed but no fork events recorded")
	}
}

// BenchmarkTable2EP regenerates Table II: EP runtime when strong scaling.
func BenchmarkTable2EP(b *testing.B) { benchTable(b, "ep") }

// BenchmarkFig4EP regenerates Figure 4: EP speedup against thread count.
func BenchmarkFig4EP(b *testing.B) { benchFigure(b, "ep") }

// BenchmarkTable3IS regenerates Table III: IS runtime when strong scaling.
func BenchmarkTable3IS(b *testing.B) { benchTable(b, "is") }

// BenchmarkFig5IS regenerates Figure 5: IS speedup against thread count.
func BenchmarkFig5IS(b *testing.B) { benchFigure(b, "is") }

// ---------------------------------------------------------------------
// Ablation A1 — reduction lowering: the paper's shared atomic cells (CAS
// loop for *, Listing 6) vs a mutex-guarded combine, under a contended
// parallel sum.

func benchReduction(b *testing.B, strategy omp.CombineStrategy) {
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	const trip = 1 << 16
	for i := 0; i < b.N; i++ {
		r := omp.NewFloat64ReductionWith(omp.ReduceSum, 0, strategy)
		omp.Parallel(func(t *omp.Thread) {
			local := r.Identity()
			omp.For(t, trip, func(j int64) { local += float64(j) })
			r.Combine(local)
		}, omp.NumThreads(threads))
		if r.Value() != float64(trip*(trip-1)/2) {
			b.Fatal("wrong sum")
		}
	}
}

// BenchmarkAblationReductionAtomic is the paper's lowering (atomic cells).
func BenchmarkAblationReductionAtomic(b *testing.B) { benchReduction(b, omp.CombineAtomic) }

// BenchmarkAblationReductionCritical is the locked-combine alternative.
func BenchmarkAblationReductionCritical(b *testing.B) { benchReduction(b, omp.CombineCritical) }

// BenchmarkAblationReductionCASMul measures the raw Listing 6 CAS loop
// under full contention: every thread multiplying one shared cell.
func BenchmarkAblationReductionCASMul(b *testing.B) {
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	cell := atomicx.NewFloat64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		omp.Parallel(func(t *omp.Thread) {
			omp.For(t, 1024, func(int64) {
				cell.Mul(2)
				cell.Mul(0.5)
			})
		}, omp.NumThreads(threads))
	}
}

// ---------------------------------------------------------------------
// Ablation A2 — barrier algorithm: cost of one full-team rendezvous under
// each algorithm. libomp hard-wires one; this runtime exposes all three.

func benchBarrier(b *testing.B, kind kmp.BarrierKind) {
	for _, n := range benchThreads() {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			bar := kmp.NewBarrier(kind, n, kmp.WaitPassive)
			b.ResetTimer()
			var wg = make(chan struct{}, n)
			for g := 0; g < n; g++ {
				go func(tid int) {
					for i := 0; i < b.N; i++ {
						bar.Wait(tid)
					}
					wg <- struct{}{}
				}(g)
			}
			for g := 0; g < n; g++ {
				<-wg
			}
		})
	}
}

// BenchmarkAblationBarrierCentral measures the central counter barrier.
func BenchmarkAblationBarrierCentral(b *testing.B) { benchBarrier(b, kmp.BarrierCentral) }

// BenchmarkAblationBarrierTree measures the arity-4 tree barrier.
func BenchmarkAblationBarrierTree(b *testing.B) { benchBarrier(b, kmp.BarrierTree) }

// BenchmarkAblationBarrierDissemination measures the dissemination barrier.
func BenchmarkAblationBarrierDissemination(b *testing.B) { benchBarrier(b, kmp.BarrierDissemination) }

// ---------------------------------------------------------------------
// Ablation A3 — schedule kinds over a deliberately imbalanced loop
// (cost ∝ i²): static suffers tail imbalance, dynamic/guided rebalance.

func benchSchedule(b *testing.B, kind omp.SchedKind, chunk int64) {
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	const trip = 2048
	sink := omp.NewFloat64Reduction(omp.ReduceSum, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		omp.Parallel(func(t *omp.Thread) {
			local := 0.0
			omp.For(t, trip, func(j int64) {
				for k := int64(0); k < j; k++ {
					local += float64(k&7) * 1e-9
				}
			}, omp.Schedule(kind, chunk))
			sink.Combine(local)
		}, omp.NumThreads(threads))
	}
	_ = sink.Value()
}

// BenchmarkAblationScheduleStatic: block partition (tail-heavy here).
func BenchmarkAblationScheduleStatic(b *testing.B) { benchSchedule(b, omp.Static, 0) }

// BenchmarkAblationScheduleStatic1: cyclic, the IS rank() distribution.
func BenchmarkAblationScheduleStatic1(b *testing.B) { benchSchedule(b, omp.Static, 1) }

// BenchmarkAblationScheduleDynamic: work stealing from a shared counter.
func BenchmarkAblationScheduleDynamic(b *testing.B) { benchSchedule(b, omp.Dynamic, 16) }

// BenchmarkAblationScheduleGuided: exponentially shrinking chunks.
func BenchmarkAblationScheduleGuided(b *testing.B) { benchSchedule(b, omp.Guided, 16) }

// BenchmarkAblationScheduleTrapezoidal: linear taper (runtime extension).
func BenchmarkAblationScheduleTrapezoidal(b *testing.B) { benchSchedule(b, omp.Trapezoidal, 16) }

// ---------------------------------------------------------------------
// Worksharing engine — the headline number of the unified stealing engine:
// a triangular workload (per-iteration cost ∝ i) under schedule(dynamic,1)
// at GOMAXPROCS workers, dispatched monotonically (the legacy shared
// iteration counter, one contended atomic per chunk) versus nonmonotonically
// (static-seeded per-thread ranges with half-range stealing, where the hot
// path touches only thread-local state).

func benchImbalanced(b *testing.B, mod omp.SchedModifier) {
	threads := runtime.GOMAXPROCS(0)
	const trip = 4096
	sink := omp.NewFloat64Reduction(omp.ReduceSum, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		omp.Parallel(func(t *omp.Thread) {
			local := 0.0
			omp.For(t, trip, func(j int64) {
				for k := int64(0); k < j; k++ { // triangular: iteration j costs ∝ j
					local += float64(k&7) * 1e-9
				}
			}, omp.Schedule(omp.Dynamic, 1, mod))
			sink.Combine(local)
		}, omp.NumThreads(threads))
	}
	b.StopTimer()
	_ = sink.Value()
}

// BenchmarkImbalancedFor/monotonic: every chunk grab hits the shared counter.
// BenchmarkImbalancedFor/nonmonotonic: chunk grabs are thread-local pops;
// only rebalancing pays a cross-thread CAS.
func BenchmarkImbalancedFor(b *testing.B) {
	b.Run("monotonic", func(b *testing.B) { benchImbalanced(b, omp.Monotonic) })
	b.Run("nonmonotonic", func(b *testing.B) { benchImbalanced(b, omp.Nonmonotonic) })
}

// ---------------------------------------------------------------------
// Ablation A4 — fork/join overhead: the EPCC syncbench "PARALLEL"
// microbenchmark — an empty region, so the hot-team wake/join path is all
// that is measured.

func BenchmarkAblationFork(b *testing.B) {
	for _, n := range benchThreads() {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				omp.Parallel(func(t *omp.Thread) {}, omp.NumThreads(n))
			}
		})
	}
}

// BenchmarkAblationForkBarrier adds one explicit barrier inside the region
// (syncbench "BARRIER").
func BenchmarkAblationForkBarrier(b *testing.B) {
	for _, n := range benchThreads() {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				omp.Parallel(func(t *omp.Thread) { omp.Barrier(t) }, omp.NumThreads(n))
			}
		})
	}
}

// BenchmarkForkOverhead is BenchmarkAblationFork with allocation reporting:
// the warm fork/join path is required to stay at 0 allocs/op for every team
// size (the hot-team fast path), which CI asserts via TestWarmRegionZeroAlloc
// and this benchmark makes visible as a number.
func BenchmarkForkOverhead(b *testing.B) {
	body := func(t *omp.Thread) {}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			omp.Parallel(body, omp.NumThreads(n)) // warm the team
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				omp.Parallel(body, omp.NumThreads(n))
			}
		})
	}
}

// ---------------------------------------------------------------------
// Serving — the request-path scenario of the hot-team runtime: many
// concurrent goroutines (requests) each repeatedly open a small parallel
// region over its own data. ns/op is the per-region cost under concurrency;
// allocs/op is required to be 0 on the warm path. SetParallelism scales the
// goroutine count beyond GOMAXPROCS, exactly the oversubscribed shape a
// server has.

func BenchmarkServingRegions(b *testing.B) {
	for _, team := range []int{1, 2} {
		for _, conc := range bench.ServingConcurrency {
			b.Run(fmt.Sprintf("team=%d/conc=%d", team, conc), func(b *testing.B) {
				b.ReportAllocs()
				b.SetParallelism(conc)
				b.RunParallel(func(pb *testing.PB) {
					data := make([]float64, bench.ServingSpan)
					for i := range data {
						data[i] = float64(i)
					}
					sums := make([]struct {
						v float64
						_ [56]byte
					}, team)
					body := func(t *omp.Thread) {
						tid := t.Tid
						omp.ForRange(t, bench.ServingSpan, func(lo, hi int64) {
							s := 0.0
							for i := lo; i < hi; i++ {
								s += data[i]
							}
							sums[tid].v += s
						})
					}
					for pb.Next() {
						omp.Parallel(body, omp.NumThreads(team))
					}
				})
			})
		}
	}
}

// ---------------------------------------------------------------------
// Loop transformations — the cache-blocking headline of the tile/unroll
// subsystem: C = A·B under the naive triple loop, the `tile
// sizes(MMTile,MMTile)` restructuring, and `parallel for collapse(2)`
// stacked above the tile directive. All three execute the identical
// floating-point chain per output cell, so every variant is verified by
// exact equality against the naive reference each iteration.

func BenchmarkTiledMatmul(b *testing.B) {
	a, m := bench.NewMMPair()
	ref := make([]float64, bench.MMN*bench.MMN)
	bench.MMNaive(ref, a, m)
	threads := runtime.GOMAXPROCS(0)
	flops := 2 * float64(bench.MMN) * float64(bench.MMN) * float64(bench.MMN)
	check := func(b *testing.B, dst []float64) {
		b.Helper()
		if bench.MMMaxDiff(dst, ref) != 0 {
			b.Fatal("matmul result diverged from naive reference")
		}
	}
	b.Run("naive", func(b *testing.B) {
		dst := make([]float64, bench.MMN*bench.MMN)
		for i := 0; i < b.N; i++ {
			bench.MMNaive(dst, a, m)
			check(b, dst)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
	})
	b.Run("tiled", func(b *testing.B) {
		dst := make([]float64, bench.MMN*bench.MMN)
		for i := 0; i < b.N; i++ {
			bench.MMTiled(dst, a, m)
			check(b, dst)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
	})
	b.Run(fmt.Sprintf("tiled+parallel/threads=%d", threads), func(b *testing.B) {
		dst := make([]float64, bench.MMN*bench.MMN)
		for i := 0; i < b.N; i++ {
			bench.MMTiledParallel(dst, a, m, threads)
			check(b, dst)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
	})
}

// ---------------------------------------------------------------------
// Ablation A5 — front-end throughput: the preprocessor over a pragma-dense
// source file, and the packed clause encode/decode round trip.

var preprocessInput = []byte(`package p

func kernels(a, b []float64, n int) float64 {
	sum := 0.0
	//omp parallel for reduction(+:sum) schedule(static) num_threads(8)
	for i := 0; i < n; i++ {
		sum += a[i] * b[i]
	}
	//omp parallel private(i) default(shared)
	{
		//omp for schedule(dynamic,16) nowait
		for i := 0; i < n; i++ {
			a[i] = b[i] * 2
		}
		//omp barrier
		//omp single
		{
			b[0] = 0
		}
		//omp critical(update)
		{
			sum += 1
		}
	}
	//omp parallel for collapse(2) schedule(guided,4)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			a[i*64+j] = float64(i + j)
		}
	}
	return sum
}
`)

// BenchmarkPreprocess measures the full tokenise→parse→pack→rewrite→gofmt
// pipeline on a representative annotated file.
func BenchmarkPreprocess(b *testing.B) {
	b.SetBytes(int64(len(preprocessInput)))
	for i := 0; i < b.N; i++ {
		if _, err := core.Preprocess(preprocessInput, core.Options{Filename: "bench.go"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriverColdVsWarm measures the module build driver
// (internal/driver, `gompcc -module`) over a synthetic pragma-annotated
// module: cold is the full crawl + parallel transform fan-out of every
// file (cache disabled), warm is the same pass against a primed
// content-hash manifest, where every file is a hash comparison and a
// stat. The files/s gap is the cache's reason to exist; the fan-out
// itself runs on this repo's own omp runtime.
func BenchmarkDriverColdVsWarm(b *testing.B) {
	const nfiles = 24
	mkmodule := func(b *testing.B) string {
		b.Helper()
		root := b.TempDir()
		for i := 0; i < nfiles; i++ {
			src := fmt.Sprintf(`package p

func kernel%d(a, b []float64, n int) float64 {
	s := 0.0
	//omp parallel for reduction(+:s) schedule(dynamic,%d)
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
`, i, i+1)
			name := filepath.Join(root, fmt.Sprintf("k%02d.go", i))
			if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		return root
	}
	jobs := runtime.GOMAXPROCS(0)
	filesPerSec := func(b *testing.B) {
		b.Helper()
		b.ReportMetric(float64(nfiles)*float64(b.N)/b.Elapsed().Seconds(), "files/s")
	}
	b.Run(fmt.Sprintf("cold/jobs=%d", jobs), func(b *testing.B) {
		d, err := driver.New(driver.Config{Module: mkmodule(b), Jobs: jobs, CacheDir: driver.CacheOff})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := d.Run()
			if err != nil || rep.Transformed != nfiles {
				b.Fatalf("cold pass: %v, %s", err, rep.Summary())
			}
		}
		filesPerSec(b)
	})
	b.Run(fmt.Sprintf("warm/jobs=%d", jobs), func(b *testing.B) {
		d, err := driver.New(driver.Config{Module: mkmodule(b), Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		if rep, err := d.Run(); err != nil || rep.Transformed != nfiles {
			b.Fatalf("priming pass: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := d.Run()
			if err != nil || rep.Cached != nfiles {
				b.Fatalf("warm pass: %v, %s", err, rep.Summary())
			}
		}
		filesPerSec(b)
	})
}

// BenchmarkClausePack measures the Section III-A2 packed encoding: a full
// directive into the 32-bit extra_data array and back.
func BenchmarkClausePack(b *testing.B) {
	d, err := core.ParseDirective("parallel for private(i,j) firstprivate(c) reduction(+:sx,sy) schedule(guided,64) collapse(2) num_threads(8)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tree := core.NewTree()
		idx, err := tree.Encode(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tree.Decode(idx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectiveParse measures tokeniser + parser alone (the front
// half of the front-end).
func BenchmarkDirectiveParse(b *testing.B) {
	const text = "parallel for private(i,j) reduction(+:sum) schedule(dynamic,64) if(n > 100) num_threads(2*k)"
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if _, err := core.ParseDirective(text); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Tasking — the explicit-task subsystem against its serial and
// loop-directive alternatives. The workloads and their tuning constants
// live in internal/bench (FibTask, ImbalancedKernel, TaskFib*/Taskloop*)
// so these targets and the npbsuite tasking table measure the identical
// configuration.

// BenchmarkTaskFib runs recursive Fibonacci through the work-stealing task
// runtime against the serial recursion — the canonical irregular workload
// loop directives cannot express. The speedup metric is task-parallel over
// serial on the same host; with GOMAXPROCS ≥ 4 it exceeds 1 once steals
// distribute the spawn tree.
func BenchmarkTaskFib(b *testing.B) {
	want := bench.FibSerial(bench.TaskFibN)
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if bench.FibSerial(bench.TaskFibN) != want {
				b.Fatal("wrong fib")
			}
		}
	})
	b.Run(fmt.Sprintf("tasks/threads=%d", threads), func(b *testing.B) {
		// Serial baseline, timed in-place (nested testing.Benchmark
		// deadlocks inside a running benchmark).
		serialStart := omp.GetWtime()
		const serialReps = 3
		for i := 0; i < serialReps; i++ {
			if bench.FibSerial(bench.TaskFibN) != want {
				b.Fatal("wrong fib")
			}
		}
		serialPerOp := (omp.GetWtime() - serialStart) / serialReps
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got := 0
			omp.Parallel(func(t *omp.Thread) {
				omp.Single(t, func() { got = bench.FibTask(t, bench.TaskFibN) })
			}, omp.NumThreads(threads))
			if got != want {
				b.Fatal("wrong fib")
			}
		}
		b.StopTimer()
		if b.N > 0 && b.Elapsed() > 0 && serialPerOp > 0 {
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(serialPerOp/perOp, "speedup")
		}
	})
}

// BenchmarkTaskloopVsFor runs the same imbalanced kernel (cost ∝ i²) under
// the two loop lowerings: taskloop chunks through the work-stealing deques,
// worksharing for through static and dynamic dispatch. Taskloop's stealing
// rebalances like dynamic dispatch but without a shared iteration counter
// on the hot path.
func BenchmarkTaskloopVsFor(b *testing.B) {
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	sink := omp.NewFloat64Reduction(omp.ReduceSum, 0)
	b.Run("taskloop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omp.Parallel(func(t *omp.Thread) {
				omp.Single(t, func() {
					omp.Taskloop(t, bench.TaskloopTrip, func(_ *omp.Thread, lo, hi int64) {
						sink.Combine(bench.ImbalancedKernel(lo, hi))
					}, omp.Grainsize(bench.TaskloopGrain))
				})
			}, omp.NumThreads(threads))
		}
	})
	b.Run("for-static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omp.Parallel(func(t *omp.Thread) {
				omp.ForRange(t, bench.TaskloopTrip, func(lo, hi int64) {
					sink.Combine(bench.ImbalancedKernel(lo, hi))
				})
			}, omp.NumThreads(threads))
		}
	})
	b.Run("for-dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omp.Parallel(func(t *omp.Thread) {
				omp.ForRange(t, bench.TaskloopTrip, func(lo, hi int64) {
					sink.Combine(bench.ImbalancedKernel(lo, hi))
				}, omp.Schedule(omp.Dynamic, bench.TaskloopGrain))
			}, omp.NumThreads(threads))
		}
	})
	_ = sink.Value()
}

// ---------------------------------------------------------------------
// Task dependences — the headline number of the dependence subsystem: a
// blocked LU factorisation (LUN×LUN, LUBlock×LUBlock blocks) expressed as
// a dependence DAG (depend(in/out/inout) on the block anchors, the whole
// factorisation spawned up front) against the taskwait-per-level
// formulation (a full child-barrier after every fwd/bdiv wave and every
// bmod wave) and the serial blocked sweep. The DAG overlaps elimination
// steps — lu0(k+1) starts while step k's trailing bmods are in flight —
// which the taskwait version structurally cannot. All three factor
// bitwise identically (asserted per iteration).
func BenchmarkBlockedLU(b *testing.B) {
	ref := bench.NewLUMatrix()
	bench.LUSerial(ref)
	threads := runtime.GOMAXPROCS(0)
	check := func(b *testing.B, a []float64) {
		b.Helper()
		if bench.LUMaxDiff(a, ref) != 0 {
			b.Fatal("LU result diverged from serial")
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := bench.NewLUMatrix()
			bench.LUSerial(a)
			check(b, a)
		}
	})
	b.Run(fmt.Sprintf("taskwait/threads=%d", threads), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := bench.NewLUMatrix()
			bench.LUTaskwait(a, threads)
			check(b, a)
		}
	})
	b.Run(fmt.Sprintf("dag/threads=%d", threads), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := bench.NewLUMatrix()
			bench.LUDAG(a, threads)
			check(b, a)
		}
	})
}
